"""Sharded parallel triplet generation over a channel multiplexer.

Partitions each radix group's flat (row, column, fragment) OT index
space into ``plan.shards`` contiguous spans.  Shard ``s`` runs its own
KK13 session (fresh base OTs, seed spawned per shard, random-oracle
tweaks separated by ``session_tag=s``) over mux stream ``s`` and
produces the partial share of its span via the span workers factored
out of :mod:`repro.core.triplets`; the full shares are the shard sums
in shard order:

    U = sum_s U_s,   V = sum_s V_s,   U + V = W_signed @ R (mod 2^l)

because OT instances are independent and share addition is associative.

The **shard count is a protocol parameter** — both parties must use the
same :class:`ShardPlan` ``shards``/``chunk_ots`` (the per-stream
transcripts depend on them).  ``workers`` and ``async_depth`` are local
execution knobs: any worker count yields byte-identical shares and
per-stream transcripts, only the frame interleaving on the underlying
channel changes.  ``workers=1`` runs the shard schedule synchronously on
the calling thread (no mux writer thread, sends block) — the sequential
baseline that ``benchmarks/bench_parallel.py`` measures speedup against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.triplets import (
    TripletConfig,
    client_group_span,
    server_group_span,
)
from repro.crypto.kk13 import Kk13Receiver, Kk13Sender
from repro.errors import ConfigError
from repro.exec.pool import run_sharded, shard_entropy
from repro.net.mux import ChannelMux
from repro.perf.trace import Tracer

_U64 = np.uint64


#: Executor kinds a :class:`ShardPlan` accepts.
EXECUTORS = ("thread", "process")


@dataclass(frozen=True)
class ShardPlan:
    """How one offline execution is split and scheduled.

    ``shards``/``chunk_ots`` are public (both parties must agree);
    ``workers``/``async_depth``/``executor`` are local.  ``chunk_ots=None``
    keeps the per-radix chunk size of :meth:`TripletConfig.chunk_size`.

    ``executor="thread"`` runs shard bodies on pool threads in this
    process (PR 5 behaviour); ``executor="process"`` ships each shard to
    a worker process via :mod:`repro.exec.procpool`, proxying its mux
    stream through the parent — same wire bytes, no GIL sharing.  The
    two parties may pick different executors.
    """

    shards: int = 8
    workers: int = 1
    chunk_ots: int | None = None
    async_depth: int = 2
    executor: str = "thread"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError("shards must be positive")
        if self.workers < 1:
            raise ConfigError("workers must be positive")
        if self.chunk_ots is not None and self.chunk_ots < 1:
            raise ConfigError("chunk_ots must be positive")
        if self.async_depth < 0:
            raise ConfigError("async_depth cannot be negative")
        if self.executor not in EXECUTORS:
            raise ConfigError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )

    def span_bounds(self, total: int, shard: int) -> tuple[int, int]:
        """Contiguous flat-index span of ``shard`` within ``total`` items."""
        return shard * total // self.shards, (shard + 1) * total // self.shards


def _run_engine(chan, config: TripletConfig, plan: ShardPlan, shard_body, stats_out,
                proc_specs=None):
    """Common scaffolding: mux, shard tracers, pool, adoption, stats.

    ``shard_body(s, stream)`` drives the thread/sequential path;
    ``proc_specs`` — ``(tag, worker, payload)`` triples for
    :func:`repro.exec.procpool.run_mux_shards` — drives the process
    path when ``plan.executor == "process"``.  Either path produces the
    same per-stream transcripts and (when traced) the same adopted
    ``shard{s}`` span trees: process-mode children build their tracer
    locally and ship it back through the result pipe.
    """
    use_async = plan.workers > 1 and plan.async_depth > 0
    mux = ChannelMux(chan, async_depth=plan.async_depth if use_async else 0)
    parent_tracer = getattr(chan, "tracer", None)
    trace = parent_tracer is not None
    busy = [0.0] * plan.shards
    use_process = plan.executor == "process" and proc_specs is not None
    if use_process:
        tracers: list = [None] * plan.shards
    else:
        tracers = [Tracer(f"shard{s}") if trace else None for s in range(plan.shards)]

    def make_task(s):
        def task():
            t0 = time.perf_counter()
            stream = mux.stream(s)
            stream.tracer = tracers[s]
            try:
                return shard_body(s, stream)
            finally:
                busy[s] = time.perf_counter() - t0

        return task

    engine_span = None
    if trace:
        engine_span = parent_tracer.start_span(
            "parallel-offline",
            shards=plan.shards, workers=plan.workers, executor=plan.executor,
        )
    t_wall = time.perf_counter()
    try:
        if use_process:
            from repro.exec.procpool import run_mux_shards

            results = run_mux_shards(
                mux, proc_specs, plan.workers,
                trace=trace, busy_out=busy, tracers_out=tracers,
            )
        else:
            results = run_sharded(
                [make_task(s) for s in range(plan.shards)],
                plan.workers,
                on_error=mux.abort,
            )
        mux.flush()
    finally:
        mux.close()
        wall = time.perf_counter() - t_wall
        occupancy = sum(busy) / (plan.workers * wall) if wall > 0 else 0.0
        if trace:
            for s in range(plan.shards):
                if tracers[s] is not None:
                    parent_tracer.adopt(tracers[s], f"shard{s}")
            engine_span.attrs["pipeline_occupancy"] = round(occupancy, 4)
            parent_tracer.end_span(engine_span)
        if stats_out is not None:
            stats_out.update(
                wall_s=wall,
                executor=plan.executor,
                shard_busy_s=list(busy),
                pipeline_occupancy=occupancy,
                stream_totals=mux.stream_totals(),
            )
    return results


# --------------------------------------------------------------------- #
# shard bodies: module-level so the process executor can ship them
# --------------------------------------------------------------------- #
def _server_shard(stream, s, config, plan, ot_seed, groups):
    """Server-side shard body; ``groups`` is ``(n_values, k_count, choices)``."""
    ring = config.ring
    u_s = ring.zeros(config.out_shape)
    for n_values, k_count, choices in groups:
        lo, hi = plan.span_bounds(choices.shape[0], s)
        if lo >= hi:
            continue
        receiver = Kk13Receiver(
            stream, n_values, group=config.group, ro=config.ro,
            seed=None if ot_seed is None else ot_seed + n_values,
            session_tag=s,
        )
        chunk = plan.chunk_ots or config.chunk_size(n_values)
        u_s = ring.add(
            u_s,
            server_group_span(
                stream, receiver, choices, config, n_values, k_count,
                lo, hi, chunk,
            ),
        )
    return u_s


def _client_shard(stream, s, config, plan, ot_seed, rng, groups, r):
    """Client-side shard body; ``groups`` is ``(n_values, k_count, value_table)``."""
    ring = config.ring
    v_s = ring.zeros(config.out_shape)
    for n_values, k_count, value_table in groups:
        total = config.rows * config.n * k_count
        lo, hi = plan.span_bounds(total, s)
        if lo >= hi:
            continue
        sender = Kk13Sender(
            stream, n_values, group=config.group, ro=config.ro,
            seed=None if ot_seed is None else ot_seed + n_values,
            session_tag=s,
        )
        chunk = plan.chunk_ots or config.chunk_size(n_values)
        v_s = ring.add(
            v_s,
            client_group_span(
                stream, sender, value_table, r, config, n_values, k_count,
                lo, hi, chunk, rng,
            ),
        )
    return v_s


def _server_shard_entry(chan, payload):
    """Process-executor entry: attach shared arrays, run the server shard."""
    from repro.exec.shm import ShmBundle

    bundle = ShmBundle.open(payload["arrays"])
    try:
        groups = [
            (n_values, k_count, bundle.arrays[f"choices{gi}"])
            for gi, (n_values, k_count) in enumerate(payload["groups"])
        ]
        return _server_shard(
            chan, payload["shard"], payload["config"], payload["plan"],
            payload["ot_seed"], groups,
        )
    finally:
        bundle.close()


def _client_shard_entry(chan, payload):
    """Process-executor entry: attach shared arrays, run the client shard."""
    from repro.exec.shm import ShmBundle

    bundle = ShmBundle.open(payload["arrays"])
    try:
        return _client_shard(
            chan, payload["shard"], payload["config"], payload["plan"],
            payload["ot_seed"], payload["rng"], payload["groups"],
            bundle.arrays["r"],
        )
    finally:
        bundle.close()


def parallel_triplets_server(
    chan,
    w_int: np.ndarray,
    config: TripletConfig,
    plan: ShardPlan,
    seed: int | None = None,
    stats_out: dict | None = None,
) -> np.ndarray:
    """Sharded :func:`repro.core.triplets.generate_triplets_server`.

    Returns ``U`` of shape ``(m, o)``; byte-identical for any
    ``plan.workers`` and either ``plan.executor`` given fixed
    ``seed``/``shards``/``chunk_ots``.
    """
    w = np.asarray(w_int, dtype=np.int64)
    if w.shape != config.w_shape:
        raise ConfigError(f"expected W of shape {config.w_shape}, got {w.shape}")
    ring = config.ring
    digits = config.scheme.digits(w)
    groups = [
        (n_values, len(k_list), digits[:, :, k_list].reshape(-1))
        for n_values, k_list in config.radix_groups
    ]
    entropy = shard_entropy(seed, plan.shards)

    def shard_body(s, stream):
        return _server_shard(stream, s, config, plan, entropy[s][0], groups)

    bundle = None
    proc_specs = None
    if plan.executor == "process":
        from repro.exec.shm import ShmBundle

        bundle = ShmBundle.create(
            {f"choices{gi}": arr for gi, (_, _, arr) in enumerate(groups)}
        )
        meta = [(n_values, k_count) for n_values, k_count, _ in groups]
        proc_specs = [
            (s, _server_shard_entry, {
                "shard": s, "config": config, "plan": plan,
                "ot_seed": entropy[s][0], "groups": meta,
                "arrays": bundle.handle(),
            })
            for s in range(plan.shards)
        ]
    try:
        parts = _run_engine(chan, config, plan, shard_body, stats_out, proc_specs)
    finally:
        if bundle is not None:
            bundle.close()
            bundle.unlink()
    u = ring.zeros(config.out_shape)
    for part in parts:
        u = ring.add(u, part)
    return ring.reduce(u)


def parallel_triplets_client(
    chan,
    r_mat: np.ndarray,
    config: TripletConfig,
    plan: ShardPlan,
    seed: int | None = None,
    stats_out: dict | None = None,
) -> np.ndarray:
    """Sharded :func:`repro.core.triplets.generate_triplets_client`.

    Unlike the sequential API the share-sampling generator is derived
    here (per shard, spawned from ``seed``) rather than passed in: the
    sampling order must follow the shard partition, not the caller's
    single stream, for worker-count independence.
    """
    r = np.asarray(r_mat, dtype=_U64)
    if r.shape != config.r_shape:
        raise ConfigError(f"expected R of shape {config.r_shape}, got {r.shape}")
    ring = config.ring
    groups = [
        (
            n_values,
            len(k_list),
            ring.reduce(np.stack([config.scheme.values(k) for k in k_list])),
        )
        for n_values, k_list in config.radix_groups
    ]
    entropy = shard_entropy(seed, plan.shards)

    def shard_body(s, stream):
        ot_seed, rng = entropy[s]
        return _client_shard(stream, s, config, plan, ot_seed, rng, groups, r)

    bundle = None
    proc_specs = None
    if plan.executor == "process":
        from repro.exec.shm import ShmBundle

        bundle = ShmBundle.create({"r": r})
        proc_specs = [
            (s, _client_shard_entry, {
                "shard": s, "config": config, "plan": plan,
                "ot_seed": entropy[s][0], "rng": entropy[s][1],
                "groups": groups, "arrays": bundle.handle(),
            })
            for s in range(plan.shards)
        ]
    try:
        parts = _run_engine(chan, config, plan, shard_body, stats_out, proc_specs)
    finally:
        if bundle is not None:
            bundle.close()
            bundle.unlink()
    v = ring.zeros(config.out_shape)
    for part in parts:
        v = ring.add(v, part)
    return ring.reduce(v)
