"""Sharded garbled-circuit execution over the instance axis.

A batched GC layer garbles one template circuit for ``n_inst``
independent instances (one per neuron/element); given the shared
free-XOR offset is *per garbling*, disjoint instance blocks are fully
independent executions.  Shard ``s`` garbles/evaluates instance block
``[lo_s, hi_s)`` as its own :class:`repro.gc.protocol.GcSessions`
(fresh IKNP session, seed spawned per shard, ``session_tag=s``) over mux
stream ``s``; the evaluator reassembles output bits by concatenating the
shard blocks in shard order, so results are worker-count independent.

Both executors of :class:`repro.exec.triplets.ShardPlan` apply here:
``"thread"`` runs shard bodies on pool threads, ``"process"`` ships the
circuit template + the full input-bit matrix (one shared-memory bundle)
to worker processes that each slice out their own block.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import ConfigError
from repro.exec.pool import run_sharded, shard_entropy
from repro.exec.triplets import ShardPlan
from repro.gc.circuit import Circuit
from repro.gc.protocol import GcSessions, run_evaluator, run_garbler
from repro.net.mux import ChannelMux


def _shard_blocks(n_inst: int, plan: ShardPlan) -> list[tuple[int, int, int]]:
    """Non-empty ``(shard, lo, hi)`` instance blocks of the plan."""
    blocks = []
    for s in range(plan.shards):
        lo, hi = plan.span_bounds(n_inst, s)
        if lo < hi:
            blocks.append((s, lo, hi))
    return blocks


# --------------------------------------------------------------------- #
# shard bodies: module-level so the process executor can ship them
# --------------------------------------------------------------------- #
def _garbler_shard(stream, s, lo, hi, circuit, bits, group, ro, ot_seed, rng):
    sessions = GcSessions(
        stream, "garbler", group=group, ro=ro, seed=ot_seed, session_tag=s
    )
    run_garbler(stream, circuit, bits[:, lo:hi], hi - lo, sessions, rng, ro)


def _evaluator_shard(stream, s, lo, hi, circuit, bits, group, ro, ot_seed):
    sessions = GcSessions(
        stream, "evaluator", group=group, ro=ro, seed=ot_seed, session_tag=s
    )
    return run_evaluator(stream, circuit, bits[:, lo:hi], hi - lo, sessions, ro)


def _garbler_shard_entry(chan, payload):
    from repro.exec.shm import ShmBundle

    bundle = ShmBundle.open(payload["arrays"])
    try:
        _garbler_shard(
            chan, payload["shard"], payload["lo"], payload["hi"],
            payload["circuit"], bundle.arrays["bits"], payload["group"],
            payload["ro"], payload["ot_seed"], payload["rng"],
        )
    finally:
        bundle.close()


def _evaluator_shard_entry(chan, payload):
    from repro.exec.shm import ShmBundle

    bundle = ShmBundle.open(payload["arrays"])
    try:
        return _evaluator_shard(
            chan, payload["shard"], payload["lo"], payload["hi"],
            payload["circuit"], bundle.arrays["bits"], payload["group"],
            payload["ro"], payload["ot_seed"],
        )
    finally:
        bundle.close()


def _run_gc_shards(chan, plan, thread_tasks_of, proc_specs_of, bits):
    """Shared scaffolding: mux + executor dispatch + cleanup."""
    use_async = plan.workers > 1 and plan.async_depth > 0
    mux = ChannelMux(chan, async_depth=plan.async_depth if use_async else 0)
    bundle = None
    try:
        if plan.executor == "process":
            from repro.exec.procpool import run_mux_shards
            from repro.exec.shm import ShmBundle

            bundle = ShmBundle.create({"bits": bits})
            parts = run_mux_shards(mux, proc_specs_of(mux, bundle), plan.workers)
        else:
            parts = run_sharded(thread_tasks_of(mux), plan.workers, on_error=mux.abort)
        mux.flush()
    finally:
        mux.close()
        if bundle is not None:
            bundle.close()
            bundle.unlink()
    return parts


def run_garbler_sharded(
    chan,
    circuit: Circuit,
    garbler_bits: np.ndarray,
    n_inst: int,
    plan: ShardPlan,
    seed: int | None = None,
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
) -> None:
    """Sharded :func:`repro.gc.protocol.run_garbler` (client side)."""
    bits = np.asarray(garbler_bits, dtype=np.uint8)
    if bits.shape != (len(circuit.garbler_inputs), n_inst):
        raise ConfigError(
            f"expected garbler bits of shape "
            f"{(len(circuit.garbler_inputs), n_inst)}, got {bits.shape}"
        )
    entropy = shard_entropy(seed, plan.shards)
    blocks = _shard_blocks(n_inst, plan)

    def thread_tasks_of(mux):
        def make_task(s, lo, hi):
            def task():
                ot_seed, rng = entropy[s]
                _garbler_shard(
                    mux.stream(s), s, lo, hi, circuit, bits, group, ro, ot_seed, rng
                )

            return task

        return [make_task(s, lo, hi) for s, lo, hi in blocks]

    def proc_specs_of(mux, bundle):
        return [
            (s, _garbler_shard_entry, {
                "shard": s, "lo": lo, "hi": hi, "circuit": circuit,
                "group": group, "ro": ro,
                "ot_seed": entropy[s][0], "rng": entropy[s][1],
                "arrays": bundle.handle(),
            })
            for s, lo, hi in blocks
        ]

    _run_gc_shards(chan, plan, thread_tasks_of, proc_specs_of, bits)


def run_evaluator_sharded(
    chan,
    circuit: Circuit,
    evaluator_bits: np.ndarray,
    n_inst: int,
    plan: ShardPlan,
    seed: int | None = None,
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
) -> np.ndarray:
    """Sharded :func:`repro.gc.protocol.run_evaluator` (server side).

    Returns ``(n_outputs, n_inst)`` cleartext bits, identical for any
    worker count and either executor on either side.
    """
    bits = np.asarray(evaluator_bits, dtype=np.uint8)
    if bits.shape != (len(circuit.evaluator_inputs), n_inst):
        raise ConfigError(
            f"expected evaluator bits of shape "
            f"{(len(circuit.evaluator_inputs), n_inst)}, got {bits.shape}"
        )
    entropy = shard_entropy(seed, plan.shards)
    blocks = _shard_blocks(n_inst, plan)

    def thread_tasks_of(mux):
        def make_task(s, lo, hi):
            def task():
                ot_seed, _ = entropy[s]
                return _evaluator_shard(
                    mux.stream(s), s, lo, hi, circuit, bits, group, ro, ot_seed
                )

            return task

        return [make_task(s, lo, hi) for s, lo, hi in blocks]

    def proc_specs_of(mux, bundle):
        return [
            (s, _evaluator_shard_entry, {
                "shard": s, "lo": lo, "hi": hi, "circuit": circuit,
                "group": group, "ro": ro, "ot_seed": entropy[s][0],
                "arrays": bundle.handle(),
            })
            for s, lo, hi in blocks
        ]

    parts = _run_gc_shards(chan, plan, thread_tasks_of, proc_specs_of, bits)
    return np.concatenate(parts, axis=1)
