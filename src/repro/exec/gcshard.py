"""Sharded garbled-circuit execution over the instance axis.

A batched GC layer garbles one template circuit for ``n_inst``
independent instances (one per neuron/element); given the shared
free-XOR offset is *per garbling*, disjoint instance blocks are fully
independent executions.  Shard ``s`` garbles/evaluates instance block
``[lo_s, hi_s)`` as its own :class:`repro.gc.protocol.GcSessions`
(fresh IKNP session, seed spawned per shard, ``session_tag=s``) over mux
stream ``s``; the evaluator reassembles output bits by concatenating the
shard blocks in shard order, so results are worker-count independent.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import ConfigError
from repro.exec.pool import run_sharded, shard_entropy
from repro.exec.triplets import ShardPlan
from repro.gc.circuit import Circuit
from repro.gc.protocol import GcSessions, run_evaluator, run_garbler
from repro.net.mux import ChannelMux


def _shard_blocks(n_inst: int, plan: ShardPlan) -> list[tuple[int, int, int]]:
    """Non-empty ``(shard, lo, hi)`` instance blocks of the plan."""
    blocks = []
    for s in range(plan.shards):
        lo, hi = plan.span_bounds(n_inst, s)
        if lo < hi:
            blocks.append((s, lo, hi))
    return blocks


def run_garbler_sharded(
    chan,
    circuit: Circuit,
    garbler_bits: np.ndarray,
    n_inst: int,
    plan: ShardPlan,
    seed: int | None = None,
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
) -> None:
    """Sharded :func:`repro.gc.protocol.run_garbler` (client side)."""
    bits = np.asarray(garbler_bits, dtype=np.uint8)
    if bits.shape != (len(circuit.garbler_inputs), n_inst):
        raise ConfigError(
            f"expected garbler bits of shape "
            f"{(len(circuit.garbler_inputs), n_inst)}, got {bits.shape}"
        )
    entropy = shard_entropy(seed, plan.shards)
    use_async = plan.workers > 1 and plan.async_depth > 0
    mux = ChannelMux(chan, async_depth=plan.async_depth if use_async else 0)

    def make_task(s, lo, hi):
        def task():
            stream = mux.stream(s)
            ot_seed, rng = entropy[s]
            sessions = GcSessions(
                stream, "garbler", group=group, ro=ro, seed=ot_seed, session_tag=s
            )
            run_garbler(stream, circuit, bits[:, lo:hi], hi - lo, sessions, rng, ro)

        return task

    try:
        run_sharded(
            [make_task(s, lo, hi) for s, lo, hi in _shard_blocks(n_inst, plan)],
            plan.workers,
        )
        mux.flush()
    finally:
        mux.close()


def run_evaluator_sharded(
    chan,
    circuit: Circuit,
    evaluator_bits: np.ndarray,
    n_inst: int,
    plan: ShardPlan,
    seed: int | None = None,
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
) -> np.ndarray:
    """Sharded :func:`repro.gc.protocol.run_evaluator` (server side).

    Returns ``(n_outputs, n_inst)`` cleartext bits, identical for any
    worker count on either side.
    """
    bits = np.asarray(evaluator_bits, dtype=np.uint8)
    if bits.shape != (len(circuit.evaluator_inputs), n_inst):
        raise ConfigError(
            f"expected evaluator bits of shape "
            f"{(len(circuit.evaluator_inputs), n_inst)}, got {bits.shape}"
        )
    entropy = shard_entropy(seed, plan.shards)
    use_async = plan.workers > 1 and plan.async_depth > 0
    mux = ChannelMux(chan, async_depth=plan.async_depth if use_async else 0)
    blocks = _shard_blocks(n_inst, plan)

    def make_task(s, lo, hi):
        def task():
            stream = mux.stream(s)
            ot_seed, _ = entropy[s]
            sessions = GcSessions(
                stream, "evaluator", group=group, ro=ro, seed=ot_seed, session_tag=s
            )
            return run_evaluator(stream, circuit, bits[:, lo:hi], hi - lo, sessions, ro)

        return task

    try:
        parts = run_sharded(
            [make_task(s, lo, hi) for s, lo, hi in blocks], plan.workers
        )
        mux.flush()
    finally:
        mux.close()
    return np.concatenate(parts, axis=1)
