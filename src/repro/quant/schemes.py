"""Weight quantizers: float tensors -> integer weights + a deferred scale.

The trained float weights are mapped onto the integer grids the fragment
schemes can carry:

* :func:`quantize_symmetric` — eta-bit symmetric quantization (INT4/INT8
  style): ``w_int = round(w / s)`` with ``s = max|w| / (2^(eta-1) - 1)``.
* :func:`quantize_ternary` — {-1, 0, 1} with a magnitude threshold
  (QUOTIENT's weight space).
* :func:`quantize_binary` — {0, 1} (the paper's binary scheme).

Each returns a :class:`QuantizedTensor` carrying the integers, the scale
to divide out at the end of inference, and the matching
:class:`~repro.quant.fragments.FragmentScheme`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.quant.fragments import FragmentScheme


@dataclass
class QuantizedTensor:
    """Integer weights plus the scale that maps them back to floats.

    ``shift`` is set for power-of-two scales (``scale = 2**-shift``):
    those layers can be rescaled after the secure matmul by SecureML-style
    *local share truncation*, keeping activations inside the ring.  Float
    scales (ternary/binary) leave ``shift`` as ``None`` and defer the
    rescaling to the logits (ReLU is positively homogeneous).
    """

    ints: np.ndarray  # int64
    scale: float  # w_float ~ ints * scale
    scheme: FragmentScheme
    shift: int | None = None

    def dequantize(self) -> np.ndarray:
        return self.ints.astype(np.float64) * self.scale

    def quantization_error(self, reference: np.ndarray) -> float:
        """RMS error against the original float tensor."""
        diff = self.dequantize() - np.asarray(reference, dtype=np.float64)
        return float(np.sqrt(np.mean(diff**2)))


def quantize_symmetric(
    weights, scheme: FragmentScheme
) -> QuantizedTensor:
    """Symmetric uniform quantization onto a fragment scheme's range.

    The scale is constrained to a power of two (``2**-shift``) so the
    secure pipeline can undo it with a share-local truncation.
    """
    w = np.asarray(weights, dtype=np.float64)
    lo, hi = scheme.weight_range
    if lo >= 0:
        raise QuantizationError(
            f"scheme {scheme.name} is unsigned; use quantize_binary instead"
        )
    max_abs = float(np.max(np.abs(w))) if w.size else 0.0
    # Use the symmetric part of the range so +max and -max both fit.
    bound = min(hi, -lo - 1) if -lo - 1 >= 1 else hi
    if max_abs > 0:
        # Largest power of two with round(w * 2^shift) still within bound.
        shift = int(np.floor(np.log2(bound / max_abs)))
        while np.abs(np.rint(w * 2.0**shift)).max() > bound:
            shift -= 1
    else:
        shift = 0
    shift = max(shift, 0)
    ints = np.clip(np.rint(w * 2.0**shift), lo, hi).astype(np.int64)
    return QuantizedTensor(ints=ints, scale=2.0**-shift, scheme=scheme, shift=shift)


def quantize_ternary(weights, threshold_ratio: float = 0.5) -> QuantizedTensor:
    """{-1, 0, 1} quantization with threshold ``t = ratio * mean|w|``."""
    w = np.asarray(weights, dtype=np.float64)
    scheme = FragmentScheme.ternary()
    threshold = threshold_ratio * float(np.mean(np.abs(w))) if w.size else 0.0
    ints = np.zeros(w.shape, dtype=np.int64)
    ints[w > threshold] = 1
    ints[w < -threshold] = -1
    nonzero = np.abs(w)[ints != 0]
    scale = float(np.mean(nonzero)) if nonzero.size else 1.0
    return QuantizedTensor(ints=ints, scale=scale, scheme=scheme)


def quantize_binary(weights, threshold: float = 0.0) -> QuantizedTensor:
    """{0, 1} quantization (the paper's binary scheme).

    Positive weights become 1 at scale mean(|positive|); everything else
    drops to 0.  Crude — which is the point: the binary rows of the
    evaluation trade accuracy for protocol speed.
    """
    w = np.asarray(weights, dtype=np.float64)
    scheme = FragmentScheme.binary()
    ints = (w > threshold).astype(np.int64)
    kept = w[ints == 1]
    scale = float(np.mean(kept)) if kept.size else 1.0
    return QuantizedTensor(ints=ints, scale=scale, scheme=scheme)


def quantize_for_scheme(weights, scheme: FragmentScheme) -> QuantizedTensor:
    """Dispatch on the scheme kind — the one-stop API used by nn.quantize."""
    if scheme.name == "binary":
        return quantize_binary(weights)
    if scheme.name == "ternary":
        return quantize_ternary(weights)
    return quantize_symmetric(weights, scheme)
