"""Quantization: fixed-point encoding, weight quantizers, fragment schemes."""

from repro.quant.fixed_point import FixedPointEncoder
from repro.quant.fragments import FragmentScheme, FragmentSpec
from repro.quant.schemes import (
    quantize_symmetric,
    quantize_binary,
    quantize_ternary,
    QuantizedTensor,
)

__all__ = [
    "FixedPointEncoder",
    "FragmentScheme",
    "FragmentSpec",
    "quantize_symmetric",
    "quantize_binary",
    "quantize_ternary",
    "QuantizedTensor",
]
