"""Fixed-point encoding of activations into Z_{2^l}.

The paper keeps activations in fixed-point form ("activations will be in
float-point form and be encoded as fixed-point to utilize the
cryptographic protocol").  We use the classic two's-complement encoding
with ``frac_bits`` fractional bits: ``encode(x) = round(x * 2^f) mod 2^l``.

Because ReLU is positively homogeneous (``ReLU(s*y) = s*ReLU(y)`` for
``s > 0``), per-layer quantization scales can be deferred to the final
logits instead of being truncated layer by layer; the secure pipeline
therefore never needs a truncation protocol, and :meth:`decode` accepts
the accumulated ``extra_scale``.  DESIGN.md discusses this choice.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.utils.ring import Ring


class FixedPointEncoder:
    """Encode/decode floats as ring elements with ``frac_bits`` precision."""

    def __init__(self, ring: Ring, frac_bits: int) -> None:
        if not 0 <= frac_bits < ring.bits:
            raise QuantizationError(
                f"frac_bits must be in [0, {ring.bits}), got {frac_bits}"
            )
        self.ring = ring
        self.frac_bits = frac_bits
        self.scale = float(1 << frac_bits)

    def encode(self, values) -> np.ndarray:
        """Floats -> ring elements (two's complement, round-to-nearest)."""
        arr = np.asarray(values, dtype=np.float64)
        scaled = np.rint(arr * self.scale)
        limit = 2.0 ** (self.ring.bits - 1)
        if (np.abs(scaled) >= limit).any():
            raise QuantizationError(
                f"value magnitude exceeds the {self.ring.bits}-bit ring after scaling"
            )
        return self.ring.reduce(scaled.astype(np.int64))

    def decode(self, elements, extra_scale: float = 1.0) -> np.ndarray:
        """Ring elements -> floats, dividing out ``2^f * extra_scale``.

        ``extra_scale`` carries the product of deferred per-layer
        quantization scales (see module docstring).
        """
        signed = self.ring.to_signed(elements)
        return signed.astype(np.float64) / (self.scale * extra_scale)

    def __repr__(self) -> str:
        return f"FixedPointEncoder(bits={self.ring.bits}, frac_bits={self.frac_bits})"
