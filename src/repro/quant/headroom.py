"""Ring-headroom accounting for transform-domain (Winograd) convolution.

The F(2x2,3x3) backend (:mod:`repro.nn.winograd`) multiplies in the
*tile-transform domain*, where both operands grow beyond their quantized
ranges:

* **Weights** pass through ``G2 g G2^T`` with ``G2 = 2G`` integer; the
  worst row L1 norm of ``G2 (x) G2`` is ``3 * 3 = 9``, so a scheme whose
  weights live in ``[lo, hi]`` produces transformed weights bounded by
  ``9 * max(|lo|, |hi|)``.  The secure dot products therefore run on a
  *derived* fragment scheme wide enough for that range —
  :func:`winograd_scheme`.  The derivation is a pure function of the
  public scheme (never of the actual weights), so using it leaks nothing.
* **Activations** pass through ``B^T d B`` with row L1 norms <= 2 per
  1-D pass, i.e. a 2-D tile gain of up to ``4``; and the output
  transform sums up to ``16`` tile products (with the uniform scale 4
  the ``G2`` convention introduces).  :func:`check_winograd_headroom`
  refuses the backend unless the ring leaves
  ``log2(16 * max_tile_gain) = 6`` slack bits above the layer's
  plaintext accumulator width — the condition under which the exact
  share-local division by 4 (and every intermediate) cannot overflow.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.quant.fragments import FragmentScheme

#: Worst-case 2-D input-tile gain: max row L1 of ``B^T (x) B^T`` (2 * 2).
WINOGRAD_MAX_TILE_GAIN = 4

#: Tile products per output tile in F(2x2,3x3).
WINOGRAD_TILE_POINTS = 16

#: Worst-case growth of a transformed weight: max row L1 of ``G2 (x) G2``.
WINOGRAD_WEIGHT_GAIN = 9

#: Slack bits the backend demands: ``ceil(log2(16 * max_tile_gain))``.
WINOGRAD_SLACK_BITS = math.ceil(math.log2(WINOGRAD_TILE_POINTS * WINOGRAD_MAX_TILE_GAIN))


def winograd_scheme(scheme: FragmentScheme) -> FragmentScheme:
    """The fragment scheme the Winograd tile products decompose over.

    Transformed weights ``G2 g G2^T`` span ``[-9M, 9M]`` for a base
    scheme with weights in ``[-M, M]``-ish ranges; the derived scheme is
    the narrowest signed 2-bit-radix decomposition covering that.  Being
    derived from the (public) base scheme only, both parties compute it
    independently and identically.
    """
    lo, hi = scheme.weight_range
    bound = WINOGRAD_WEIGHT_GAIN * max(abs(lo), abs(hi))
    if bound < 1:
        raise ConfigError(f"scheme {scheme.name!r} has an empty weight range")
    # Smallest eta' with [-2^(eta'-1), 2^(eta'-1) - 1] covering [-bound, bound].
    eta = bound.bit_length() + 1
    widths = (2,) * (eta // 2) + ((1,) if eta % 2 else ())
    return FragmentScheme.from_bits(widths, signed=True)


def check_winograd_headroom(
    ring_bits: int,
    scheme: FragmentScheme,
    in_channels: int,
    frac_bits: int,
) -> None:
    """Refuse the Winograd backend when the ring cannot absorb the gains.

    The accumulator of one tile product sums ``in_channels`` transformed
    products of an ``eta'``-bit weight with a ``frac_bits``-scaled
    activation; on top of that the backend needs
    :data:`WINOGRAD_SLACK_BITS` bits for the input-tile gain, the output
    transform's 16-term sums, and one sign bit.
    """
    wino = winograd_scheme(scheme)
    accum_bits = wino.eta + frac_bits + math.ceil(math.log2(max(2, in_channels)))
    needed = accum_bits + WINOGRAD_SLACK_BITS + 1
    if ring_bits < needed:
        raise ConfigError(
            f"winograd backend needs {needed} ring bits for scheme "
            f"{scheme.name!r} (transformed eta={wino.eta}, frac_bits="
            f"{frac_bits}, C_in={in_channels}, slack={WINOGRAD_SLACK_BITS}) "
            f"but the ring has {ring_bits}; use im2col or widen the ring"
        )
