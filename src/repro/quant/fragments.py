"""Fragment schemes: the N-base decomposition at the core of ABNN2.

The paper decomposes an eta-bit quantized weight ``w`` into gamma
fragments (Eq. 2): ``w * r = sum_i N^i w[i] * r``, one 1-out-of-N OT per
fragment.  Table 2 writes schemes as tuples of per-fragment bit widths,
LSB first — ``(2,2,2,2)`` for eta = 8, ``(2,1)`` for eta = 3, etc. — so
fragments may have *different* radices (mixed-radix decomposition); this
module models exactly that, plus the special ``binary`` ({0,1}) and
``ternary`` ({-1,0,1}) schemes the evaluation compares against.

Signed weights need no extra OTs: the OT sender enumerates message
contents for every choice index anyway, so the **top fragment's value
table** simply interprets its digit in two's complement.  The digit (OT
choice index) is still the raw bit pattern; only the *value* the client
multiplies into its messages changes.  :meth:`FragmentScheme.values`
exposes those per-digit contributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError


@dataclass(frozen=True)
class FragmentSpec:
    """One fragment: an N-valued OT whose digit ``j`` contributes ``values[j]``."""

    n_values: int
    values: tuple[int, ...]  # signed contribution of each digit

    def __post_init__(self) -> None:
        if self.n_values < 2:
            raise QuantizationError("a fragment needs at least 2 values")
        if len(self.values) != self.n_values:
            raise QuantizationError("value table size must equal n_values")


class FragmentScheme:
    """A full decomposition of eta-bit weights into OT fragments."""

    def __init__(self, name: str, eta: int, fragments: list[FragmentSpec], signed: bool) -> None:
        self.name = name
        self.eta = eta
        self.fragments = list(fragments)
        self.signed = signed

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_bits(cls, bit_widths: tuple[int, ...], signed: bool = True) -> "FragmentScheme":
        """Build a scheme from Table 2 notation, LSB-first bit widths.

        ``(2,2,2,2)`` means four fragments of 2 bits each (N = 4);
        ``(3,3,2)`` means 3-bit, 3-bit, then 2-bit fragments.  With
        ``signed=True`` the top fragment's digits are read in two's
        complement so the scheme covers ``[-2^(eta-1), 2^(eta-1))``.
        """
        if not bit_widths or any(b < 1 for b in bit_widths):
            raise QuantizationError(f"invalid bit widths {bit_widths}")
        eta = sum(bit_widths)
        fragments = []
        offset = 0
        for idx, width in enumerate(bit_widths):
            n = 1 << width
            top = idx == len(bit_widths) - 1
            values = []
            for digit in range(n):
                magnitude = digit
                if signed and top and digit >= n // 2:
                    magnitude = digit - n
                values.append(magnitude << offset)
            fragments.append(FragmentSpec(n, tuple(values)))
            offset += width
        label = ",".join(str(b) for b in bit_widths)
        return cls(f"{eta}({label})", eta, fragments, signed)

    @classmethod
    def binary(cls) -> "FragmentScheme":
        """The paper's binary scheme: weights in {0, 1}, one (2 1)-OT."""
        return cls("binary", 1, [FragmentSpec(2, (0, 1))], signed=False)

    @classmethod
    def ternary(cls) -> "FragmentScheme":
        """The paper's ternary scheme: weights in {-1, 0, 1}, one (3 1)-OT."""
        return cls("ternary", 2, [FragmentSpec(3, (0, 1, -1))], signed=True)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def gamma(self) -> int:
        """Number of fragments (OTs per weight element)."""
        return len(self.fragments)

    @property
    def max_n(self) -> int:
        return max(f.n_values for f in self.fragments)

    @property
    def weight_range(self) -> tuple[int, int]:
        """Inclusive (lo, hi) of representable weights."""
        lo = sum(min(f.values) for f in self.fragments)
        hi = sum(max(f.values) for f in self.fragments)
        return lo, hi

    def values(self, fragment_idx: int) -> np.ndarray:
        """Per-digit signed contributions of one fragment, as int64."""
        return np.asarray(self.fragments[fragment_idx].values, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # digit encoding
    # ------------------------------------------------------------------ #
    def digits(self, weights) -> np.ndarray:
        """OT choice indices for (signed) integer weights.

        Returns an int64 array with one trailing axis of length gamma.
        Raises if any weight is outside :attr:`weight_range`.
        """
        w = np.asarray(weights, dtype=np.int64)
        lo, hi = self.weight_range
        if (w < lo).any() or (w > hi).any():
            raise QuantizationError(
                f"weights outside [{lo}, {hi}] for scheme {self.name}"
            )
        out = np.empty(w.shape + (self.gamma,), dtype=np.int64)
        if self.name == "ternary":
            # {-1, 0, 1} -> digits {2, 0, 1}
            out[..., 0] = np.where(w < 0, 2, w)
            return out
        # Mixed-radix bit slicing of the two's-complement pattern.
        pattern = w & ((1 << self.eta) - 1) if self.signed else w
        offset = 0
        for idx, frag in enumerate(self.fragments):
            width = (frag.n_values - 1).bit_length()
            out[..., idx] = (pattern >> offset) & (frag.n_values - 1)
            offset += width
        return out

    def compose(self, digits: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`digits` — mostly for tests/invariants."""
        d = np.asarray(digits, dtype=np.int64)
        total = np.zeros(d.shape[:-1], dtype=np.int64)
        for idx in range(self.gamma):
            total = total + self.values(idx)[d[..., idx]]
        return total

    def __repr__(self) -> str:
        return f"FragmentScheme({self.name}, gamma={self.gamma})"


#: The schemes Table 2 evaluates, keyed by (eta, tuple-notation).
TABLE2_SCHEMES: dict[str, FragmentScheme] = {
    "8(1,...,1)": FragmentScheme.from_bits((1,) * 8),
    "8(2,2,2,2)": FragmentScheme.from_bits((2, 2, 2, 2)),
    "8(3,3,2)": FragmentScheme.from_bits((3, 3, 2)),
    "8(4,4)": FragmentScheme.from_bits((4, 4)),
    "6(1,...,1)": FragmentScheme.from_bits((1,) * 6),
    "6(2,2,2)": FragmentScheme.from_bits((2, 2, 2)),
    "6(3,3)": FragmentScheme.from_bits((3, 3)),
    "4(1,...,1)": FragmentScheme.from_bits((1,) * 4),
    "4(2,2)": FragmentScheme.from_bits((2, 2)),
    "4(4)": FragmentScheme.from_bits((4,)),
    "3(1,...,1)": FragmentScheme.from_bits((1,) * 3),
    "3(2,1)": FragmentScheme.from_bits((2, 1)),
    "3(3)": FragmentScheme.from_bits((3,)),
    "ternary": FragmentScheme.ternary(),
    "binary": FragmentScheme.binary(),
}
