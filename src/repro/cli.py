"""Command-line interface: train, ship, and run secure predictions.

The CLI wires the library into the deployment shape the paper envisions —
a model owner's process and a data owner's process talking over TCP:

    # one-time, model owner
    repro-abnn2 train --out model.npz --scheme "4(2,2)"
    repro-abnn2 meta --model model.npz --out meta.json   # give to clients

    # one long-lived server, many client sessions
    repro-abnn2 serve   --model model.npz --port 9001 --batch 4 \
                        --rounds 8 --bank bank.npz --max-sessions 4
    repro-abnn2 predict --meta meta.json --host 127.0.0.1 --port 9001 --demo 4

    # restart: bank.npz is reloaded, the offline phase is skipped

    # protocol-parameter planning
    repro-abnn2 cost --eta 8 --batch 128

    # observability: render a trace's measured-vs-predicted table
    repro-abnn2 report --trace trace.json
    repro-abnn2 report --demo --save-trace trace.json --check

``train`` uses the synthetic MNIST-like task (the sandbox substitute for
MNIST); ``predict --demo N`` draws N test digits from it.  Arbitrary
inputs come in as ``.npy`` files shaped ``(batch, features)``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.params import enumerate_costs, optimal_scheme, scheme_for
from repro.core.protocol import ModelMeta
from repro.errors import ReproError
from repro.nn.data import synthetic_mnist
from repro.nn.model import mnist_mlp
from repro.nn.persist import load_meta, load_model, save_meta, save_model
from repro.nn.quantize import quantize_model
from repro.nn.train import TrainConfig, train_classifier
from repro.quant.fragments import TABLE2_SCHEMES
from repro.utils.ring import Ring

MB = 1024 * 1024


def _parse_scheme(text: str):
    if text in TABLE2_SCHEMES:
        return TABLE2_SCHEMES[text]
    return scheme_for(text)


# --------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------- #
def cmd_train(args) -> int:
    print(f"training on synthetic MNIST ({args.epochs} epochs)...")
    data = synthetic_mnist(n_train=args.samples, n_test=max(200, args.samples // 5))
    model = mnist_mlp(seed=args.seed, hidden=args.hidden)
    train_classifier(
        model, data.train_x, data.train_y, TrainConfig(epochs=args.epochs, seed=args.seed)
    )
    print(f"float accuracy: {model.accuracy(data.test_x, data.test_y):.3f}")

    scheme = _parse_scheme(args.scheme)
    qmodel = quantize_model(model, scheme, Ring(args.ring), frac_bits=args.frac_bits)
    qmodel.check_range(data.test_x)
    print(f"quantized ({scheme.name}) accuracy: {qmodel.accuracy(data.test_x, data.test_y):.3f}")

    save_model(args.out, qmodel)
    print(f"wrote server bundle: {args.out}")
    if args.meta_out:
        save_meta(args.meta_out, ModelMeta.from_model(qmodel))
        print(f"wrote client metadata: {args.meta_out}")
    return 0


def cmd_meta(args) -> int:
    qmodel = load_model(args.model)
    save_meta(args.out, ModelMeta.from_model(qmodel))
    print(f"wrote client metadata: {args.out}")
    return 0


def cmd_serve(args) -> int:
    import os

    from repro.serve import PredictionServer, ShardedTripletBank, TripletBank

    from repro.crypto.hash_ro import default_ro, get_ro

    executor = args.executor or os.environ.get("ABNN2_EXECUTOR", "thread")
    ro_name = args.ro or os.environ.get("ABNN2_RO")
    qmodel = load_model(args.model)
    bank_cls = TripletBank
    bank_kwargs = {}
    if args.bank_shards > 1:
        bank_cls = ShardedTripletBank
        bank_kwargs["shards"] = args.bank_shards
    bank = bank_cls(
        qmodel,
        args.batch,
        capacity=max(args.rounds, 1),
        auto_replenish=args.replenish,
        seed=args.seed,
        workers=args.workers,
        executor=executor,
        ro=get_ro(ro_name) if ro_name else default_ro,
        **bank_kwargs,
    )
    # A sharded bank persists to <path>.shard<i>, one bundle per shard.
    if args.bank and (
        os.path.exists(args.bank) or os.path.exists(f"{args.bank}.shard0")
    ):
        loaded = bank.load(args.bank)
        print(f"loaded {loaded} banked round(s) from {args.bank} (offline phase skipped)")
    deficit = args.rounds - bank.depth
    if deficit > 0:
        print(f"banking {deficit} offline round(s) (OT triplets, batch={args.batch})...")
        bank.fill(deficit)
        gen_mb = bank.metrics()["generation_payload_bytes"] / MB
        print(f"offline done: {bank.depth} round(s) banked, {gen_mb:.2f} MB of triplet traffic")
        if args.bank:
            bank.save(args.bank)
            print(f"wrote bank bundle: {args.bank}")

    server = PredictionServer(
        qmodel,
        bank,
        ro=bank.ro,
        port=args.port,
        host=args.host,
        max_sessions=args.max_sessions,
        keep_alive=args.keep_alive,
        relu_variant=args.relu,
        session_timeout_s=args.timeout,
        trace_dir=args.trace_dir,
        seed=args.seed,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        max_queued=args.max_queued,
        min_bank_depth=args.min_bank_depth,
    )
    batching = (
        f"batch_window={args.batch_window_ms}ms batch_max={args.batch_max}"
        if server.scheduler is not None
        else "off"
    )
    print(
        f"listening on {server.host}:{server.port} "
        f"(batch={args.batch}, max_sessions={args.max_sessions}, "
        f"bank depth={bank.depth}, shards={args.bank_shards}, "
        f"batching={batching})..."
    )
    try:
        server.serve_forever(max_total_sessions=args.exit_after)
    except KeyboardInterrupt:
        print("interrupted; draining sessions...")
    finally:
        server.stop()
        if args.bank:
            remaining = bank.save(args.bank)
            print(f"persisted {remaining} unused round(s) to {args.bank}")
    for rec in server.records:
        if rec.error is not None:
            print(f"session {rec.session_id}: FAILED ({rec.error})")
        else:
            print(
                f"session {rec.session_id}: {rec.predictions} prediction(s) "
                f"in {rec.duration_s:.2f}s"
            )
    metrics = server.metrics()
    print(
        f"served {metrics['sessions_served']} session(s), "
        f"{metrics['predictions']} prediction(s).  The predictions belong "
        "to the clients; this side saw only shares."
    )
    sched = metrics.get("scheduler")
    if sched is not None:
        print(
            f"batching: {sched['batched']} session-round(s) in "
            f"{sched['batched_rounds']} wide round(s), "
            f"max width {sched['batch_width_max']}, "
            f"p95 wait {sched['p95_wait_ms']:.1f} ms, "
            f"denied (queue/bank/exhausted)="
            f"{sched['denied_queue_depth']}/{sched['denied_bank_depth']}/"
            f"{sched['denied_exhausted']}"
        )
    return 0


def cmd_predict(args) -> int:
    import os

    from repro.crypto.hash_ro import default_ro, get_ro
    from repro.serve import PredictionClient

    ro_name = args.ro or os.environ.get("ABNN2_RO")
    meta = load_meta(args.meta)
    if args.demo is not None:
        data = synthetic_mnist()
        x = data.test_x[: args.demo]
        truth = data.test_y[: args.demo]
    else:
        x = np.load(args.input)
        truth = None
    if x.ndim != 2 or x.shape[1] != meta.layers[0].in_features:
        print(
            f"error: expected input of shape (batch, {meta.layers[0].in_features})",
            file=sys.stderr,
        )
        return 2

    client = PredictionClient(
        meta,
        x.shape[0],
        host=args.host,
        port=args.port,
        mode=args.mode,
        relu_variant=args.relu,
        timeout_s=args.timeout,
        seed=args.seed,
        ro=get_ro(ro_name) if ro_name else default_ro,
    )
    try:
        print(f"connected (session {client.session_id}, mode={args.mode})...")
        for _ in range(args.rounds):
            _, predictions = client.predict(x)
            print(f"predictions: {predictions.tolist()}")
            if truth is not None:
                print(f"ground truth: {truth.tolist()}")
        if args.trace_out:
            client.tracer.save(args.trace_out)
            print(f"wrote trace: {args.trace_out}")
    finally:
        client.close()
    return 0


def _demo_trace(args) -> dict:
    """Run a small in-process secure prediction and return its client trace."""
    from repro.core.pipeline import PipelineConfig
    from repro.core.protocol import secure_predict
    from repro.crypto.group import MODP_TEST

    scheme = _parse_scheme(args.scheme)
    backend = getattr(args, "linear_backend", "im2col")
    if backend == "winograd":
        # The MLP demo has no convolution; trace a small conv net so the
        # winograd tile products actually appear in the report.
        from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
        from repro.nn.model import Sequential

        conv_net = Sequential(
            [
                Conv2d(1, 2, 3, stride=1, seed=0),
                ReLU(),
                Flatten(),
                Dense(2 * 6 * 6, 4, seed=1),
            ]
        )
        qmodel = quantize_model(
            conv_net,
            scheme,
            Ring(args.ring),
            input_shape=(1, 8, 8),
            linear_backend="winograd",
        )
    else:
        model = mnist_mlp(seed=0, hidden=args.hidden)
        qmodel = quantize_model(model, scheme, Ring(args.ring))
    rng = np.random.default_rng(0)
    x = rng.random((args.batch, qmodel.layers[0].in_features))
    pipeline = None
    if args.pipeline:
        pipeline = PipelineConfig(
            chunk=args.gc_stream_chunk, window=args.gc_stream_window
        )
    print("running demo secure prediction to produce a trace...", file=sys.stderr)
    report = secure_predict(qmodel, x, group=MODP_TEST, seed=0, pipeline=pipeline)
    return report.client_trace


def cmd_report(args) -> int:
    import json

    from repro.perf import report as perf_report
    from repro.perf.trace import load_trace

    trace = _demo_trace(args) if args.demo else load_trace(args.trace)
    if args.save_trace:
        with open(args.save_trace, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote trace: {args.save_trace}", file=sys.stderr)
    print(perf_report.render_report(trace))
    if args.memory:
        print()
        print(perf_report.render_memory_report(trace))
    if args.check:
        failures = perf_report.check_conformance(trace)
        if failures:
            for failure in failures:
                print(f"conformance FAIL: {failure}", file=sys.stderr)
            return 1
        print("\nconformance: all modeled spans within tolerance")
    return 0


def cmd_cost(args) -> int:
    print(
        f"fragment decompositions for eta={args.eta}, l={args.ring}, batch={args.batch}"
    )
    rows = enumerate_costs(args.eta, ring_bits=args.ring, batch=args.batch)
    print(f"{'scheme':>16} {'gamma':>6} {'max N':>6} {'bits/weight':>12}")
    for row in rows[: args.top]:
        label = "(" + ",".join(str(b) for b in row["bit_widths"]) + ")"
        print(f"{label:>16} {row['gamma']:>6} {row['max_n']:>6} {row['comm_bits']:>12}")
    best = optimal_scheme(args.eta, ring_bits=args.ring, batch=args.batch)
    print(f"\noptimal: {best.name}")
    return 0


# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-abnn2",
        description="ABNN2 secure two-party QNN predictions (DAC'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train", help="train + quantize a model on synthetic MNIST")
    p.add_argument("--out", required=True, help="server bundle path (.npz)")
    p.add_argument("--meta-out", help="also write client metadata JSON here")
    p.add_argument("--scheme", default="4(2,2)", help="fragment scheme (Table 2 notation)")
    p.add_argument("--ring", type=int, default=32, choices=(16, 32, 64))
    p.add_argument("--frac-bits", type=int, default=6)
    p.add_argument("--hidden", type=int, default=128)
    p.add_argument("--epochs", type=int, default=6)
    p.add_argument("--samples", type=int, default=2000)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("meta", help="extract client metadata from a server bundle")
    p.add_argument("--model", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_meta)

    p = sub.add_parser("serve", help="run the multi-session prediction server")
    p.add_argument("--model", required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--batch", type=int, default=1)
    p.add_argument(
        "--rounds", type=int, default=1,
        help="offline rounds to bank before accepting clients",
    )
    p.add_argument(
        "--bank",
        help="bank bundle path (.npz): loaded if present, written after generation",
    )
    p.add_argument(
        "--max-sessions", type=int, default=4,
        help="maximum concurrent client sessions",
    )
    p.add_argument(
        "--keep-alive", action=argparse.BooleanOptionalAction, default=True,
        help="let one session run multiple prediction rounds",
    )
    p.add_argument(
        "--replenish", action="store_true",
        help="regenerate offline rounds in the background as sessions drain the bank",
    )
    p.add_argument(
        "--exit-after", type=int, default=None,
        help="stop after accepting this many sessions (default: serve forever)",
    )
    p.add_argument("--relu", default="oblivious", choices=("oblivious", "optimized"))
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--trace-dir", help="write one trace JSON per session here")
    p.add_argument(
        "--workers", type=int, default=1,
        help="offline generation workers (round material is worker-count "
        "independent for a fixed --seed)",
    )
    p.add_argument(
        "--executor", default=None, choices=("thread", "process"),
        help="offline generation executor: 'thread' shares the serving "
        "process's GIL, 'process' runs each round's self-play in a worker "
        "process (default: $ABNN2_EXECUTOR or thread)",
    )
    p.add_argument(
        "--ro", default=None, choices=("sha256", "siphash", "fast"),
        help="random-oracle backend for offline generation; 'fast' is "
        "byte-identical to 'siphash' with a GIL-releasing execution "
        "profile (default: $ABNN2_RO or the library default)",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=None,
        help="enable cross-session batching: hold granted rounds up to "
        "this long and run them as one wide online round "
        "(default: off, or 10 ms when $ABNN2_SERVE_BATCH is set)",
    )
    p.add_argument(
        "--batch-max", type=int, default=8,
        help="maximum sessions coalesced into one wide round",
    )
    p.add_argument(
        "--bank-shards", type=int, default=1,
        help="stripe the triplet bank across this many independently "
        "replenished shards (each gets its own replenisher thread)",
    )
    p.add_argument(
        "--max-queued", type=int, default=64,
        help="admission control: deny a round (clean ctrl-plane deny) "
        "when this many requests are already queued for batching",
    )
    p.add_argument(
        "--min-bank-depth", type=int, default=0,
        help="admission control: deny new rounds while the bank holds "
        "fewer than this many offline rounds",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("predict", help="run the client party over TCP")
    p.add_argument("--meta", required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--input", help=".npy of shape (batch, features)")
    group.add_argument("--demo", type=int, help="use N synthetic test digits")
    p.add_argument(
        "--rounds", type=int, default=1,
        help="prediction rounds to run on this session (keep-alive)",
    )
    p.add_argument(
        "--mode", default="bank", choices=("bank", "interactive"),
        help="bank: server deals precomputed material; interactive: joint offline phase",
    )
    p.add_argument("--relu", default="oblivious", choices=("oblivious", "optimized"))
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--trace-out", help="write this party's trace JSON after the run")
    p.add_argument(
        "--ro", default=None, choices=("sha256", "siphash", "fast"),
        help="random-oracle backend; must be mask-compatible with the "
        "server's ('fast' and 'siphash' are interchangeable; default: "
        "$ABNN2_RO or the library default)",
    )
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser(
        "report", help="measured-vs-predicted table from a protocol trace"
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--trace", help="trace JSON from --trace-out or Tracer.save()")
    src.add_argument(
        "--demo", action="store_true",
        help="run a small in-process prediction and report its trace",
    )
    p.add_argument("--save-trace", help="also write the trace JSON here")
    p.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every modeled span matches the cost model",
    )
    p.add_argument(
        "--memory", action="store_true",
        help="also print per-layer allocation peaks vs the closed-form "
        "working sets (measured column needs a trace recorded with "
        "ABNN2_TRACE_MEMORY=1)",
    )
    p.add_argument("--scheme", default="4(2,2)", help="demo fragment scheme")
    p.add_argument(
        "--linear-backend", choices=("im2col", "winograd"), default="im2col",
        help="conv lowering for the demo model (winograd traces a small "
        "conv net; the MLP demo has no convolutions)",
    )
    p.add_argument("--ring", type=int, default=32, choices=(16, 32, 64))
    p.add_argument("--hidden", type=int, default=8)
    p.add_argument("--batch", type=int, default=2)
    p.add_argument(
        "--pipeline", action="store_true",
        help="run the demo with the layer-pipelined online phase "
        "(streamed garbling over per-layer mux streams)",
    )
    p.add_argument(
        "--gc-stream-chunk", type=int, default=None,
        help="AND gates per streamed garbled-table block "
        "(bounds peak GC memory; default: whole circuit in one block)",
    )
    p.add_argument(
        "--gc-stream-window", type=int, default=8,
        help="max unacked table chunks in flight on each GC stream",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("cost", help="rank fragment schemes by Table-1 cost")
    p.add_argument("--eta", type=int, required=True)
    p.add_argument("--ring", type=int, default=32)
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_cost)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
