"""Command-line interface: train, ship, and run secure predictions.

The CLI wires the library into the deployment shape the paper envisions —
a model owner's process and a data owner's process talking over TCP:

    # one-time, model owner
    repro-abnn2 train --out model.npz --scheme "4(2,2)"
    repro-abnn2 meta --model model.npz --out meta.json   # give to clients

    # per session
    repro-abnn2 serve   --model model.npz --port 9001 --batch 4
    repro-abnn2 predict --meta meta.json --host 127.0.0.1 --port 9001 --demo 4

    # protocol-parameter planning
    repro-abnn2 cost --eta 8 --batch 128

    # observability: render a trace's measured-vs-predicted table
    repro-abnn2 report --trace trace.json
    repro-abnn2 report --demo --save-trace trace.json --check

``train`` uses the synthetic MNIST-like task (the sandbox substitute for
MNIST); ``predict --demo N`` draws N test digits from it.  Arbitrary
inputs come in as ``.npy`` files shaped ``(batch, features)``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.params import enumerate_costs, optimal_scheme, scheme_for
from repro.core.protocol import Abnn2Client, Abnn2Server, ModelMeta
from repro.errors import ReproError
from repro.net import tcp
from repro.nn.data import synthetic_mnist
from repro.nn.model import mnist_mlp
from repro.nn.persist import load_meta, load_model, save_meta, save_model
from repro.nn.quantize import quantize_model
from repro.nn.train import TrainConfig, train_classifier
from repro.quant.fragments import TABLE2_SCHEMES
from repro.utils.ring import Ring

MB = 1024 * 1024


def _parse_scheme(text: str):
    if text in TABLE2_SCHEMES:
        return TABLE2_SCHEMES[text]
    return scheme_for(text)


# --------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------- #
def cmd_train(args) -> int:
    print(f"training on synthetic MNIST ({args.epochs} epochs)...")
    data = synthetic_mnist(n_train=args.samples, n_test=max(200, args.samples // 5))
    model = mnist_mlp(seed=args.seed, hidden=args.hidden)
    train_classifier(
        model, data.train_x, data.train_y, TrainConfig(epochs=args.epochs, seed=args.seed)
    )
    print(f"float accuracy: {model.accuracy(data.test_x, data.test_y):.3f}")

    scheme = _parse_scheme(args.scheme)
    qmodel = quantize_model(model, scheme, Ring(args.ring), frac_bits=args.frac_bits)
    qmodel.check_range(data.test_x)
    print(f"quantized ({scheme.name}) accuracy: {qmodel.accuracy(data.test_x, data.test_y):.3f}")

    save_model(args.out, qmodel)
    print(f"wrote server bundle: {args.out}")
    if args.meta_out:
        save_meta(args.meta_out, ModelMeta.from_model(qmodel))
        print(f"wrote client metadata: {args.meta_out}")
    return 0


def cmd_meta(args) -> int:
    qmodel = load_model(args.model)
    save_meta(args.out, ModelMeta.from_model(qmodel))
    print(f"wrote client metadata: {args.out}")
    return 0


def cmd_serve(args) -> int:
    qmodel = load_model(args.model)
    print(f"listening on {args.host}:{args.port} (batch={args.batch})...")
    chan = tcp.listen(args.port, host=args.host, timeout_s=args.timeout)
    try:
        server = Abnn2Server(
            chan, qmodel, args.batch, relu_variant=args.relu, seed=args.seed
        )
        print("client connected; running offline phase (OT triplets)...")
        server.offline()
        print(
            f"offline done: {server.offline_stats.payload_bytes / MB:.2f} MB, "
            f"{server.offline_stats.seconds:.2f}s; running online phase..."
        )
        server.online()
        print(
            f"online done: {server.online_stats.payload_bytes / MB:.2f} MB, "
            f"{server.online_stats.seconds:.2f}s.  The prediction belongs "
            "to the client; this side saw only shares."
        )
        if args.trace_out:
            server.tracer.save(args.trace_out)
            print(f"wrote trace: {args.trace_out}")
    finally:
        chan.close()
    return 0


def cmd_predict(args) -> int:
    meta = load_meta(args.meta)
    if args.demo is not None:
        data = synthetic_mnist()
        x = data.test_x[: args.demo]
        truth = data.test_y[: args.demo]
    else:
        x = np.load(args.input)
        truth = None
    if x.ndim != 2 or x.shape[1] != meta.layers[0].in_features:
        print(
            f"error: expected input of shape (batch, {meta.layers[0].in_features})",
            file=sys.stderr,
        )
        return 2

    ring = Ring(meta.ring_bits)
    from repro.quant.fixed_point import FixedPointEncoder

    encoder = FixedPointEncoder(ring, meta.frac_bits)
    chan = tcp.connect(args.host, args.port, timeout_s=args.timeout)
    try:
        client = Abnn2Client(
            chan, meta, x.shape[0], relu_variant=args.relu, seed=args.seed
        )
        print("connected; running offline phase (OT triplets)...")
        client.offline()
        print(
            f"offline done: {client.offline_stats.payload_bytes / MB:.2f} MB; "
            "running online phase..."
        )
        logits = client.online(encoder.encode(x.T))
        predictions = np.argmax(ring.to_signed(logits), axis=0)
        if args.trace_out:
            client.tracer.save(args.trace_out)
            print(f"wrote trace: {args.trace_out}")
    finally:
        chan.close()
    print(f"predictions: {predictions.tolist()}")
    if truth is not None:
        print(f"ground truth: {truth.tolist()}")
    return 0


def _demo_trace(args) -> dict:
    """Run a small in-process secure prediction and return its client trace."""
    from repro.core.protocol import secure_predict
    from repro.crypto.group import MODP_TEST

    model = mnist_mlp(seed=0, hidden=args.hidden)
    scheme = _parse_scheme(args.scheme)
    qmodel = quantize_model(model, scheme, Ring(args.ring))
    rng = np.random.default_rng(0)
    x = rng.random((args.batch, qmodel.layers[0].in_features))
    print("running demo secure prediction to produce a trace...", file=sys.stderr)
    report = secure_predict(qmodel, x, group=MODP_TEST, seed=0)
    return report.client_trace


def cmd_report(args) -> int:
    import json

    from repro.perf import report as perf_report
    from repro.perf.trace import load_trace

    trace = _demo_trace(args) if args.demo else load_trace(args.trace)
    if args.save_trace:
        with open(args.save_trace, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote trace: {args.save_trace}", file=sys.stderr)
    print(perf_report.render_report(trace))
    if args.check:
        failures = perf_report.check_conformance(trace)
        if failures:
            for failure in failures:
                print(f"conformance FAIL: {failure}", file=sys.stderr)
            return 1
        print("\nconformance: all modeled spans within tolerance")
    return 0


def cmd_cost(args) -> int:
    print(
        f"fragment decompositions for eta={args.eta}, l={args.ring}, batch={args.batch}"
    )
    rows = enumerate_costs(args.eta, ring_bits=args.ring, batch=args.batch)
    print(f"{'scheme':>16} {'gamma':>6} {'max N':>6} {'bits/weight':>12}")
    for row in rows[: args.top]:
        label = "(" + ",".join(str(b) for b in row["bit_widths"]) + ")"
        print(f"{label:>16} {row['gamma']:>6} {row['max_n']:>6} {row['comm_bits']:>12}")
    best = optimal_scheme(args.eta, ring_bits=args.ring, batch=args.batch)
    print(f"\noptimal: {best.name}")
    return 0


# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-abnn2",
        description="ABNN2 secure two-party QNN predictions (DAC'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("train", help="train + quantize a model on synthetic MNIST")
    p.add_argument("--out", required=True, help="server bundle path (.npz)")
    p.add_argument("--meta-out", help="also write client metadata JSON here")
    p.add_argument("--scheme", default="4(2,2)", help="fragment scheme (Table 2 notation)")
    p.add_argument("--ring", type=int, default=32, choices=(16, 32, 64))
    p.add_argument("--frac-bits", type=int, default=6)
    p.add_argument("--hidden", type=int, default=128)
    p.add_argument("--epochs", type=int, default=6)
    p.add_argument("--samples", type=int, default=2000)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("meta", help="extract client metadata from a server bundle")
    p.add_argument("--model", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_meta)

    p = sub.add_parser("serve", help="run the server party over TCP")
    p.add_argument("--model", required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--relu", default="oblivious", choices=("oblivious", "optimized"))
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--trace-out", help="write this party's trace JSON after the run")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("predict", help="run the client party over TCP")
    p.add_argument("--meta", required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--input", help=".npy of shape (batch, features)")
    group.add_argument("--demo", type=int, help="use N synthetic test digits")
    p.add_argument("--relu", default="oblivious", choices=("oblivious", "optimized"))
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--trace-out", help="write this party's trace JSON after the run")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser(
        "report", help="measured-vs-predicted table from a protocol trace"
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--trace", help="trace JSON from --trace-out or Tracer.save()")
    src.add_argument(
        "--demo", action="store_true",
        help="run a small in-process prediction and report its trace",
    )
    p.add_argument("--save-trace", help="also write the trace JSON here")
    p.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every modeled span matches the cost model",
    )
    p.add_argument("--scheme", default="4(2,2)", help="demo fragment scheme")
    p.add_argument("--ring", type=int, default=32, choices=(16, 32, 64))
    p.add_argument("--hidden", type=int, default=8)
    p.add_argument("--batch", type=int, default=2)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("cost", help="rank fragment schemes by Table-1 cost")
    p.add_argument("--eta", type=int, required=True)
    p.add_argument("--ring", type=int, default=32)
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_cost)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
