"""Half-gates garbling (Zahur–Rosulek–Evans), batched over instances.

Free-XOR fixes a global offset ``R`` (with ``lsb(R) = 1`` for
point-and-permute); each wire ``w`` carries labels ``(W^0, W^1 = W^0 ^ R)``
whose least-significant bit is the select bit.  XOR and INV gates are
label arithmetic; each AND gate emits two 128-bit ciphertexts
(``T_G``, ``T_E``).

All label tensors have shape ``(n_wires, n_inst, 2)`` uint64 — the same
template circuit garbled for ``n_inst`` independent instances in one
vectorized pass, which is how ABNN2 garbles a whole ReLU layer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import CryptoError
from repro.gc.circuit import Circuit, GateOp

_U64 = np.uint64
LABEL_WORDS = 2
_DOMAIN_GC = 7

#: Debug poison for the np.empty label buffers below: with
#: ``ABNN2_GC_DEBUG=1`` buffers are pre-filled with this word and the
#: output wires are checked against it after garbling/evaluation, so a
#: wire the gate loop failed to write is caught instead of silently
#: garbling garbage.  (A genuine label colliding with the poison on both
#: words has probability 2^-128 per wire.)
_POISON_WORD = _U64(0xDEAD_BEEF_DEAD_BEEF)


def _debug_poison_enabled() -> bool:
    return os.environ.get("ABNN2_GC_DEBUG", "") == "1"


def _label_buffer(shape: tuple[int, ...]) -> np.ndarray:
    """Uninitialized label tensor; poisoned when GC debug mode is on.

    Every slot is written before it is read (inputs by the rng block,
    everything else by its gate), so zeroing megabytes per layer was
    pure overhead.
    """
    buf = np.empty(shape, dtype=_U64)
    if _debug_poison_enabled():
        buf[...] = _POISON_WORD
    return buf


def _check_poison(labels: np.ndarray, what: str) -> None:
    """Raise if any label row is still the debug poison pattern."""
    if not _debug_poison_enabled():
        return
    if bool((labels == _POISON_WORD).all(axis=-1).any()):
        raise CryptoError(f"unwritten {what} label: wire never assigned by a gate")


class _LabelHasher:
    """H(label, tweak) with the per-call scratch hoisted out of the loop.

    ``_hash_labels`` is called four times per AND gate while garbling
    and twice while evaluating; reallocating the ``(n_inst, 4)`` hash
    input block and re-materializing the ``arange`` tweak column each
    call dominated small-circuit garbling.  One instance owns both for a
    whole execution (``ro.mask`` never retains or mutates its input).
    """

    __slots__ = ("ro", "_rows")

    def __init__(self, n_inst: int, ro: RandomOracle) -> None:
        self.ro = ro
        self._rows = np.empty((n_inst, LABEL_WORDS + 2), dtype=_U64)
        self._rows[:, LABEL_WORDS + 1] = np.arange(n_inst, dtype=_U64)

    def __call__(self, labels: np.ndarray, gate_half: int) -> np.ndarray:
        rows = self._rows
        rows[:, :LABEL_WORDS] = labels
        rows[:, LABEL_WORDS] = _U64(gate_half)
        return self.ro.mask(rows, LABEL_WORDS, domain=_DOMAIN_GC)


def _hash_labels(
    labels: np.ndarray, gate_half: int, ro: RandomOracle
) -> np.ndarray:
    """H(label, tweak) for a (n_inst, 2) label block -> (n_inst, 2).

    One-shot form of :class:`_LabelHasher`, kept for callers that hash a
    single block (tests, exploratory code); the gate loops below use the
    hoisted hasher.
    """
    return _LabelHasher(labels.shape[0], ro)(labels, gate_half)


@dataclass
class GarbledCircuit:
    """Garbler-side material for one batched garbling."""

    circuit: Circuit
    n_inst: int
    tables: np.ndarray  # (n_and, n_inst, 2, 2) u64: [gate, inst, {T_G,T_E}, word]
    label0: np.ndarray  # (n_wires, n_inst, 2) u64: labels encoding FALSE
    offset: np.ndarray  # (2,) u64: the free-XOR offset R

    def encode(self, wires: list[int], bits: np.ndarray) -> np.ndarray:
        """Active labels for given input wires/values: (n_wires_sel, n_inst, 2)."""
        values = np.asarray(bits, dtype=np.uint8)
        if values.shape != (len(wires), self.n_inst):
            raise CryptoError(
                f"expected bits of shape {(len(wires), self.n_inst)}, got {values.shape}"
            )
        base = self.label0[wires]
        return base ^ (values[..., None].astype(_U64) * self.offset)

    def output_decode_bits(self) -> np.ndarray:
        """Permute bits of the output wires: (n_outputs, n_inst) uint8."""
        outs = self.label0[self.circuit.outputs]
        return (outs[..., 0] & _U64(1)).astype(np.uint8)


def _sample_input_labels(
    circuit: Circuit, n_inst: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Fresh ``(label0, offset)`` with every input wire's label sampled.

    The RNG call sequence is part of the transcript-determinism contract:
    both :func:`garble` and the chunked streamer
    (:mod:`repro.gc.stream`) draw labels through this one helper, so a
    fixed seed yields the same labels regardless of chunking.
    """
    if n_inst < 1:
        raise CryptoError("need at least one instance")
    label0 = _label_buffer((circuit.n_wires, n_inst, LABEL_WORDS))
    offset = rng.integers(0, 1 << 63, size=LABEL_WORDS, dtype=_U64)
    offset = (offset << _U64(1)) | rng.integers(0, 2, size=LABEL_WORDS, dtype=_U64)
    offset[0] |= _U64(1)  # lsb(R) = 1: point-and-permute select bits work

    input_wires = circuit.garbler_inputs + circuit.evaluator_inputs
    raw = rng.integers(0, 1 << 63, size=(len(input_wires), n_inst, LABEL_WORDS), dtype=_U64)
    raw = (raw << _U64(1)) | rng.integers(
        0, 2, size=(len(input_wires), n_inst, LABEL_WORDS), dtype=_U64
    )
    label0[input_wires] = raw
    return label0, offset


def _garble_and(
    label0: np.ndarray,
    offset: np.ndarray,
    gate,
    g_idx: int,
    hasher: _LabelHasher,
) -> tuple[np.ndarray, np.ndarray]:
    """Garble one AND gate: writes ``label0[gate.out]``, returns (T_G, T_E).

    Shared by the one-shot :func:`garble` and the chunked streamer so the
    two paths cannot drift gate-math-wise.
    """
    a0 = label0[gate.a]
    b0 = label0[gate.b]
    a1 = a0 ^ offset
    b1 = b0 ^ offset
    p_a = (a0[:, 0] & _U64(1)).astype(bool)
    p_b = (b0[:, 0] & _U64(1)).astype(bool)

    h_a0 = hasher(a0, 2 * g_idx)
    h_a1 = hasher(a1, 2 * g_idx)
    h_b0 = hasher(b0, 2 * g_idx + 1)
    h_b1 = hasher(b1, 2 * g_idx + 1)

    # Garbler half gate.
    t_g = h_a0 ^ h_a1 ^ np.where(p_b[:, None], offset[None, :], _U64(0))
    w_g0 = h_a0 ^ np.where(p_a[:, None], t_g, _U64(0))
    # Evaluator half gate.
    t_e = h_b0 ^ h_b1 ^ a0
    w_e0 = h_b0 ^ np.where(p_b[:, None], t_e ^ a0, _U64(0))

    label0[gate.out] = w_g0 ^ w_e0
    return t_g, t_e


def garble(
    circuit: Circuit,
    n_inst: int,
    rng: np.random.Generator,
    ro: RandomOracle = default_ro,
) -> GarbledCircuit:
    """Garble ``circuit`` for ``n_inst`` parallel instances."""
    label0, offset = _sample_input_labels(circuit, n_inst, rng)

    n_and = circuit.and_count
    tables = _label_buffer((n_and, n_inst, 2, LABEL_WORDS))
    hasher = _LabelHasher(n_inst, ro)
    and_idx = 0
    for g_idx, gate in enumerate(circuit.gates):
        if gate.op == GateOp.XOR:
            label0[gate.out] = label0[gate.a] ^ label0[gate.b]
        elif gate.op == GateOp.INV:
            label0[gate.out] = label0[gate.a] ^ offset
        else:
            t_g, t_e = _garble_and(label0, offset, gate, g_idx, hasher)
            tables[and_idx, :, 0] = t_g
            tables[and_idx, :, 1] = t_e
            and_idx += 1

    _check_poison(label0[circuit.outputs], "output")
    return GarbledCircuit(circuit=circuit, n_inst=n_inst, tables=tables, label0=label0, offset=offset)
