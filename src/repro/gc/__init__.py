"""Yao garbled circuits: free-XOR + half-gates, batched across instances.

ABNN2 evaluates one small circuit (ReLU on l-bit operands) for every
neuron of a layer.  The implementation exploits that: a circuit is a
*template*, and garbling/evaluation are vectorized over many parallel
instances with numpy, so the per-gate Python loop runs once per template
gate rather than once per neuron.
"""

from repro.gc.circuit import Circuit, Gate, GateOp
from repro.gc.builder import (
    add_words,
    sub_words,
    mux_words,
    relu_template,
    sign_template,
    reconstruct_sub_template,
)
from repro.gc.garble import garble
from repro.gc.evaluate import evaluate, decode_outputs
from repro.gc.protocol import run_garbler, run_evaluator, GcSessions
from repro.gc.stream import DEFAULT_WINDOW, evaluate_stream, garble_stream

__all__ = [
    "DEFAULT_WINDOW",
    "garble_stream",
    "evaluate_stream",
    "Circuit",
    "Gate",
    "GateOp",
    "add_words",
    "sub_words",
    "mux_words",
    "relu_template",
    "sign_template",
    "reconstruct_sub_template",
    "garble",
    "evaluate",
    "decode_outputs",
    "run_garbler",
    "run_evaluator",
    "GcSessions",
]
