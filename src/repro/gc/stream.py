"""Chunked gate-by-gate GC streaming with bounded table memory.

The one-shot path (:func:`repro.gc.protocol.run_garbler`) materializes
the full ``(n_and, n_inst, 2, 2)`` table tensor and ships it as one
message — O(circuit) peak memory on both sides and nothing on the wire
until the whole layer is garbled.  This module garbles, transfers, and
evaluates in **bounded chunks** of AND gates instead, so

* peak garbled-table residency is ``O(chunk)`` on both parties
  (``chunk * n_inst * 2 * 2 * 8`` bytes per materialized block), and
* the first ciphertexts hit the wire after ``chunk`` AND gates of work,
  which is what lets the layer-graph pipeline overlap layer ``k+1``'s
  table transfer with layer ``k``'s online round.

Wire format, one stream per execution (garbler → evaluator unless
noted):

1. **header** ``(n_chunks, chunk, own_labels)`` — chunk geometry plus
   the garbler's active input labels;
2. **chunks** ``(chunk_idx, tables_block)`` — ``tables_block`` is the
   ``(k, n_inst, 2, LABEL_WORDS)`` half-gate ciphertexts of the next
   ``k`` AND gates in circuit order (``k == chunk`` except possibly the
   last block);
3. **trailer** ``decode_bits`` — the output wires' permute bits;
4. evaluator → garbler: one ``int`` ack per chunk, sent after the chunk
   has been fully *evaluated* (not merely received).

Flow control: the garbler keeps at most ``window`` unacked chunks in
flight, then blocks on the next ack — so an arbitrarily slow evaluator
bounds the garbler's send-ahead and the evaluator's inbox backlog to
``window`` blocks, preserving the memory bound end to end.  ``chunk``
is a *protocol* parameter (both parties frame the same gates per
block); ``window`` is a garbler-local knob.

The label OT for the evaluator's input bits is **not** part of the
stream: it depends on online data, so the caller runs it on the
sequential path (see :mod:`repro.core.pipeline`).  ``on_pairs`` hands
the evaluator-input label pairs to the caller *before* the gate loop
starts, which is what allows the OT to proceed concurrently with the
table stream.

Any transport failure mid-stream (drop, truncation, corruption, stall —
all surfacing as :class:`~repro.errors.ChannelError`) is re-raised as
:class:`~repro.errors.ProtocolError` so both parties report a streamed
execution that died the same way a malformed message would.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import ChannelError, ConfigError, ProtocolError
from repro.gc.circuit import Circuit, GateOp
from repro.gc.evaluate import _evaluate_and, decode_outputs
from repro.gc.garble import (
    LABEL_WORDS,
    _check_poison,
    _garble_and,
    _label_buffer,
    _LabelHasher,
    _sample_input_labels,
)

_U64 = np.uint64

#: Default garbler flow-control window (unacked chunks in flight).
DEFAULT_WINDOW = 8


def resolve_chunk(circuit: Circuit, chunk: int | None) -> tuple[int, int]:
    """Normalize a chunk knob to ``(chunk, n_chunks)`` for ``circuit``.

    ``None`` (or anything >= the AND count) means one block carrying the
    whole circuit — the streamed framing with no memory bound.
    """
    n_and = circuit.and_count
    size = n_and if chunk is None else int(chunk)
    if size < 1:
        raise ConfigError(f"gc stream chunk must be >= 1, got {chunk}")
    size = min(size, max(n_and, 1))
    n_chunks = -(-n_and // size) if n_and else 0
    return size, n_chunks


def table_block_bytes(chunk: int, n_inst: int) -> int:
    """Bytes of one full garbled-table block (the residency unit)."""
    return chunk * n_inst * 2 * LABEL_WORDS * 8


def garble_stream(
    chan: Any,
    circuit: Circuit,
    garbler_bits: np.ndarray,
    n_inst: int,
    rng: np.random.Generator,
    *,
    chunk: int | None = None,
    window: int = DEFAULT_WINDOW,
    ro: RandomOracle = default_ro,
    on_pairs: Callable[[np.ndarray], None] | None = None,
) -> dict[str, int]:
    """Garble ``circuit`` chunk by chunk, streaming tables over ``chan``.

    ``garbler_bits`` has shape ``(n_garbler_inputs, n_inst)``.  Returns
    an info dict (``chunks``, ``chunk``, ``window``,
    ``peak_unacked_chunks``, ``peak_table_bytes``).
    """
    if window < 1:
        raise ConfigError(f"gc stream window must be >= 1, got {window}")
    bits = np.asarray(garbler_bits, dtype=np.uint8)
    if bits.shape != (len(circuit.garbler_inputs), n_inst):
        raise ProtocolError(
            f"expected garbler bits of shape "
            f"{(len(circuit.garbler_inputs), n_inst)}, got {bits.shape}"
        )
    size, n_chunks = resolve_chunk(circuit, chunk)

    label0, offset = _sample_input_labels(circuit, n_inst, rng)
    own_labels = label0[circuit.garbler_inputs] ^ (
        bits[..., None].astype(_U64) * offset
    )
    if circuit.evaluator_inputs:
        ebase = label0[circuit.evaluator_inputs].reshape(-1, LABEL_WORDS)
        pairs = np.empty((ebase.shape[0], 2, LABEL_WORDS), dtype=_U64)
        pairs[:, 0] = ebase
        pairs[:, 1] = ebase ^ offset
    else:
        pairs = np.zeros((0, 2, LABEL_WORDS), dtype=_U64)
    if on_pairs is not None:
        # Published before any gate is garbled: the evaluator-input label
        # pairs depend only on the input sampling, so the caller can run
        # the label OT while the table stream is still being produced.
        on_pairs(pairs)

    hasher = _LabelHasher(n_inst, ro)
    block = np.empty((size, n_inst, 2, LABEL_WORDS), dtype=_U64)
    filled = 0
    chunk_idx = 0
    acked = 0
    peak_unacked = 0

    def _recv_ack(expected: int) -> None:
        ack = chan.recv()
        if not isinstance(ack, int) or ack != expected:
            raise ProtocolError(f"gc stream: expected ack for chunk #{expected}, got {ack!r}")

    try:
        chan.send((n_chunks, size, own_labels))
        for g_idx, gate in enumerate(circuit.gates):
            if gate.op == GateOp.XOR:
                label0[gate.out] = label0[gate.a] ^ label0[gate.b]
            elif gate.op == GateOp.INV:
                label0[gate.out] = label0[gate.a] ^ offset
            else:
                t_g, t_e = _garble_and(label0, offset, gate, g_idx, hasher)
                block[filled, :, 0] = t_g
                block[filled, :, 1] = t_e
                filled += 1
                if filled == size:
                    chan.send((chunk_idx, block[:filled].copy()))
                    chunk_idx += 1
                    filled = 0
                    peak_unacked = max(peak_unacked, chunk_idx - acked)
                    while chunk_idx - acked > window:
                        _recv_ack(acked)
                        acked += 1
        if filled:
            chan.send((chunk_idx, block[:filled].copy()))
            chunk_idx += 1
            peak_unacked = max(peak_unacked, chunk_idx - acked)
        outs = label0[circuit.outputs]
        _check_poison(outs, "output")
        chan.send((outs[..., 0] & _U64(1)).astype(np.uint8))
        while acked < n_chunks:
            _recv_ack(acked)
            acked += 1
    except ChannelError as exc:
        raise ProtocolError(f"gc table stream failed on the garbler side: {exc}") from exc
    return {
        "chunks": n_chunks,
        "chunk": size,
        "window": window,
        "peak_unacked_chunks": peak_unacked,
        "peak_table_bytes": table_block_bytes(size, n_inst),
    }


def evaluate_stream(
    chan: Any,
    circuit: Circuit,
    my_labels: np.ndarray,
    n_inst: int,
    *,
    ro: RandomOracle = default_ro,
) -> tuple[np.ndarray, dict[str, int]]:
    """Evaluate one streamed execution; returns ``(out_bits, info)``.

    ``my_labels`` are the evaluator's active input labels, shaped
    ``(n_evaluator_inputs, n_inst, LABEL_WORDS)`` — obtained by the
    caller via the label OT on the sequential path.  ``info`` carries
    ``chunks``, ``chunk``, and ``peak_table_bytes`` (the largest table
    block this side ever held — the measured residency bound).
    """
    n_and = circuit.and_count
    my = np.asarray(my_labels, dtype=_U64)
    if my.shape != (len(circuit.evaluator_inputs), n_inst, LABEL_WORDS):
        raise ProtocolError(
            f"expected evaluator labels of shape "
            f"{(len(circuit.evaluator_inputs), n_inst, LABEL_WORDS)}, got {my.shape}"
        )
    try:
        header = chan.recv()
        if (
            not isinstance(header, tuple)
            or len(header) != 3
            or not isinstance(header[0], int)
            or not isinstance(header[1], int)
            or not isinstance(header[2], np.ndarray)
        ):
            raise ProtocolError("malformed gc stream header")
        n_chunks, size, garbler_labels = header
        if size < 1 or n_chunks != (-(-n_and // size) if n_and else 0):
            raise ProtocolError(
                f"gc stream header disagrees with the circuit: "
                f"{n_chunks} chunk(s) of {size} for {n_and} AND gates"
            )
        if garbler_labels.shape != (len(circuit.garbler_inputs), n_inst, LABEL_WORDS):
            raise ProtocolError(
                f"expected garbler labels of shape "
                f"{(len(circuit.garbler_inputs), n_inst, LABEL_WORDS)}, "
                f"got {garbler_labels.shape}"
            )

        active = _label_buffer((circuit.n_wires, n_inst, LABEL_WORDS))
        active[circuit.garbler_inputs] = garbler_labels.astype(_U64, copy=False)
        active[circuit.evaluator_inputs] = my
        hasher = _LabelHasher(n_inst, ro)

        block: np.ndarray | None = None
        used = 0
        next_chunk = 0
        peak = 0
        for g_idx, gate in enumerate(circuit.gates):
            if gate.op == GateOp.XOR:
                active[gate.out] = active[gate.a] ^ active[gate.b]
            elif gate.op == GateOp.INV:
                active[gate.out] = active[gate.a]  # garbler flipped the decode side
            else:
                if block is None or used == block.shape[0]:
                    if block is not None:
                        chan.send(next_chunk - 1)  # this chunk is fully evaluated
                        block = None
                    frame = chan.recv()
                    if (
                        not isinstance(frame, tuple)
                        or len(frame) != 2
                        or not isinstance(frame[0], int)
                        or not isinstance(frame[1], np.ndarray)
                    ):
                        raise ProtocolError("malformed gc stream chunk frame")
                    idx, arr = frame
                    if idx != next_chunk:
                        raise ProtocolError(
                            f"gc stream chunk out of order: expected #{next_chunk}, got #{idx}"
                        )
                    expect_k = size if next_chunk < n_chunks - 1 else n_and - size * (n_chunks - 1)
                    if arr.shape != (expect_k, n_inst, 2, LABEL_WORDS) or arr.dtype != _U64:
                        raise ProtocolError(
                            f"gc stream chunk #{idx}: expected "
                            f"{(expect_k, n_inst, 2, LABEL_WORDS)} u64 tables, "
                            f"got {arr.dtype} {arr.shape}"
                        )
                    block = arr
                    used = 0
                    next_chunk += 1
                    peak = max(peak, block.nbytes)
                _evaluate_and(active, gate, g_idx, hasher, block[used, :, 0], block[used, :, 1])
                used += 1
        if block is not None:
            chan.send(next_chunk - 1)
        if next_chunk != n_chunks:
            raise ProtocolError(
                f"gc stream ended after {next_chunk} of {n_chunks} chunks"
            )

        decode = chan.recv()
        if not isinstance(decode, np.ndarray) or decode.shape != (
            len(circuit.outputs),
            n_inst,
        ):
            raise ProtocolError("malformed gc stream decode-bit trailer")
        out = active[circuit.outputs].copy()
        _check_poison(out, "output")
        out_bits = decode_outputs(out, decode.astype(np.uint8, copy=False))
    except ChannelError as exc:
        raise ProtocolError(f"gc table stream failed on the evaluator side: {exc}") from exc
    return out_bits, {"chunks": n_chunks, "chunk": size, "peak_table_bytes": peak}
