"""Word-level circuit builders: adders, subtractors, muxes, ReLU templates.

All word encodings are LSB-first lists of wire ids over Z_{2^l}.  Because
operands live in the ring, the ripple-carry adder simply drops its final
carry — this is the paper's observation that "there will be no extra cost
required to complete the non-XOR gates corresponding to the modulo
operation".

AND-gate budgets (l-bit words):

* :func:`add_words` / :func:`sub_words` — ``l - 1`` ANDs (no carry out).
* :func:`mux_words` — ``l`` ANDs.
* :func:`relu_template` — reconstruct + sign + mask + reshare:
  ``3l - 2`` ANDs.
* :func:`sign_template` — reconstruct + sign only: ``l - 1`` ANDs (stage 1
  of the paper's optimized ReLU).
* :func:`reconstruct_sub_template` — reconstruct and subtract the fresh
  share: ``2l - 2`` ANDs (stage 2, run only on positive neurons).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.gc.circuit import Circuit


def _check_same_width(x: list[int], y: list[int]) -> None:
    if len(x) != len(y):
        raise ConfigError(f"word width mismatch: {len(x)} vs {len(y)}")


def add_words(circ: Circuit, x: list[int], y: list[int]) -> list[int]:
    """Ripple-carry addition mod 2^l (carry out discarded).

    Full adder per bit using the standard free-XOR-friendly form:
    ``s = a ^ b ^ cin``, ``cout = cin ^ ((a ^ cin) & (b ^ cin))`` —
    one AND per bit, and none at the top bit.
    """
    _check_same_width(x, y)
    out = []
    carry = None
    for i, (a, b) in enumerate(zip(x, y)):
        if carry is None:
            out.append(circ.xor(a, b))
            if len(x) > 1:
                carry = circ.and_(a, b)
        else:
            axc = circ.xor(a, carry)
            bxc = circ.xor(b, carry)
            out.append(circ.xor(axc, b))
            if i < len(x) - 1:
                carry = circ.xor(circ.and_(axc, bxc), carry)
    return out


def neg_words(circ: Circuit, x: list[int]) -> list[int]:
    """Two's-complement negation: ``-x = ~x + 1`` (l - 1 ANDs)."""
    inverted = [circ.inv(w) for w in x]
    return _add_const_one(circ, inverted)


def _add_const_one(circ: Circuit, x: list[int]) -> list[int]:
    """x + 1 via an increment chain (carry starts at constant 1)."""
    out = []
    carry = None  # None encodes "carry == 1" for the first position
    for i, a in enumerate(x):
        if carry is None:
            out.append(circ.inv(a))
            carry = a  # carry-out of (a + 1) is a itself
        else:
            out.append(circ.xor(a, carry))
            if i < len(x) - 1:
                carry = circ.and_(a, carry)
    return out


def sub_words(circ: Circuit, x: list[int], y: list[int]) -> list[int]:
    """x - y mod 2^l as ``x + ~y + 1`` — a borrow-style ripple (l-1 ANDs)."""
    _check_same_width(x, y)
    out = []
    carry = None  # None encodes carry-in fixed to 1 at bit 0
    for i, (a, b_raw) in enumerate(zip(x, y)):
        b = circ.inv(b_raw)
        if carry is None:
            # Bit 0 computes a + b + 1: sum = ~(a ^ b).
            out.append(circ.inv(circ.xor(a, b)))
            # carry-out of (a + b + 1) is majority(a, b, 1) = a | b.
            if len(x) > 1:
                carry = circ.or_(a, b)
        else:
            axc = circ.xor(a, carry)
            bxc = circ.xor(b, carry)
            out.append(circ.xor(axc, b))
            if i < len(x) - 1:
                carry = circ.xor(circ.and_(axc, bxc), carry)
    return out


def mux_words(circ: Circuit, sel: int, when_true: list[int], when_false: list[int]) -> list[int]:
    """Per-bit select: ``sel ? when_true : when_false`` (l ANDs)."""
    _check_same_width(when_true, when_false)
    out = []
    for t, f in zip(when_true, when_false):
        diff = circ.xor(t, f)
        out.append(circ.xor(circ.and_(sel, diff), f))
    return out


def and_broadcast(circ: Circuit, bit: int, x: list[int]) -> list[int]:
    """AND one control bit onto every bit of a word (l ANDs)."""
    return [circ.and_(bit, w) for w in x]


# --------------------------------------------------------------------- #
# ABNN2 activation templates (Algorithm 2 instantiations)
# --------------------------------------------------------------------- #
def relu_template(bits: int) -> Circuit:
    """The fully-oblivious ReLU of Algorithm 2.

    Inputs: evaluator (server) holds ``y0``; garbler (client) holds ``y1``
    and its fresh output share ``z1``.  The circuit computes
    ``z0 = max(0, y0 + y1) - z1`` and reveals it to the evaluator only.

    AND count: ``(l-1)`` add + ``l`` mask + ``(l-1)`` subtract = ``3l - 2``.
    """
    circ = Circuit()
    y0 = circ.evaluator_input(bits)
    y1 = circ.garbler_input(bits)
    z1 = circ.garbler_input(bits)
    y = add_words(circ, y0, y1)
    non_negative = circ.inv(y[-1])  # MSB clear <=> y >= 0 (two's complement)
    relu = and_broadcast(circ, non_negative, y)
    z0 = sub_words(circ, relu, z1)
    circ.mark_outputs(z0)
    circ.validate()
    return circ


def sign_template(bits: int) -> Circuit:
    """Stage 1 of the optimized ReLU: just the comparison ``y0 > -y1``.

    Outputs a single bit (1 iff ``y0 + y1 >= 0``); costs ``l - 1`` ANDs.
    """
    circ = Circuit()
    y0 = circ.evaluator_input(bits)
    y1 = circ.garbler_input(bits)
    y = add_words(circ, y0, y1)
    circ.mark_outputs([circ.inv(y[-1])])
    circ.validate()
    return circ


def reconstruct_sub_template(bits: int) -> Circuit:
    """Stage 2 of the optimized ReLU, run only on the positive neurons.

    Computes ``z0 = (y0 + y1) - z1`` — reconstruct-and-reshare without the
    sign mask (``2l - 2`` ANDs).
    """
    circ = Circuit()
    y0 = circ.evaluator_input(bits)
    y1 = circ.garbler_input(bits)
    z1 = circ.garbler_input(bits)
    y = add_words(circ, y0, y1)
    z0 = sub_words(circ, y, z1)
    circ.mark_outputs(z0)
    circ.validate()
    return circ


def zero_wire(circ: Circuit, any_wire: int) -> int:
    """A constant-0 wire: ``x ^ x`` is free under free-XOR."""
    return circ.xor(any_wire, any_wire)


def add_words_grow(circ: Circuit, x: list[int], y: list[int], zero: int) -> list[int]:
    """Unsigned addition that *keeps* the carry: width ``max(|x|,|y|) + 1``.

    Shorter operands are padded with the constant-zero wire.  Used by the
    popcount tree, where widths grow by one per level.
    """
    width = max(len(x), len(y))
    a = list(x) + [zero] * (width - len(x))
    b = list(y) + [zero] * (width - len(y))
    out = []
    carry = None
    for i in range(width):
        if carry is None:
            out.append(circ.xor(a[i], b[i]))
            carry = circ.and_(a[i], b[i])
        else:
            axc = circ.xor(a[i], carry)
            bxc = circ.xor(b[i], carry)
            out.append(circ.xor(axc, b[i]))
            carry = circ.xor(circ.and_(axc, bxc), carry)
    out.append(carry)
    return out


def popcount_tree(circ: Circuit, bits: list[int]) -> list[int]:
    """Population count of a bit list as an LSB-first word.

    Balanced pairwise adder tree; ``n - popcount-ish`` AND gates total.
    This is the workhorse of XONN-style binarized linear layers, where
    XNOR products are free and the count is everything.
    """
    if not bits:
        raise ConfigError("popcount of zero bits")
    zero = zero_wire(circ, bits[0])
    counts: list[list[int]] = [[b] for b in bits]
    while len(counts) > 1:
        merged = []
        for i in range(0, len(counts) - 1, 2):
            merged.append(add_words_grow(circ, counts[i], counts[i + 1], zero))
        if len(counts) % 2:
            merged.append(counts[-1])
        counts = merged
    return counts[0]


def geq_words(circ: Circuit, x: list[int], y: list[int]) -> int:
    """Unsigned ``x >= y`` as a single bit (the subtraction's no-borrow).

    Operands are zero-padded to a common width; cost ``width`` ANDs.
    """
    if not x or not y:
        raise ConfigError("empty comparison operands")
    zero = zero_wire(circ, x[0])
    width = max(len(x), len(y))
    a = list(x) + [zero] * (width - len(x))
    b = list(y) + [zero] * (width - len(y))
    # Compute a + ~b + 1; the final carry-out is 1 iff a >= b.
    carry = None
    for i in range(width):
        nb = circ.inv(b[i])
        if carry is None:
            # carry-out of (a + ~b + 1) at bit 0 is a | ~b
            carry = circ.or_(a[i], nb)
        else:
            axc = circ.xor(a[i], carry)
            bxc = circ.xor(nb, carry)
            carry = circ.xor(circ.and_(axc, bxc), carry)
    return carry


def max_words(circ: Circuit, a: list[int], b: list[int]) -> list[int]:
    """max(a, b) for signed ring words with |a - b| < 2^(l-1).

    ``a < b`` iff the sign bit of ``a - b`` is set; one subtract plus one
    mux: ``2l - 1`` ANDs.
    """
    diff = sub_words(circ, a, b)
    return mux_words(circ, diff[-1], b, a)


def maxpool_template(bits: int, window: int) -> Circuit:
    """Secure max pooling over one window of additively shared values.

    Inputs: evaluator holds the ``window`` share words ``y0``; garbler
    holds ``y1`` plus its fresh output share ``z1``.  The circuit
    reconstructs each element, takes the tree maximum, and reshapes:
    ``z0 = max_i(y0_i + y1_i) - z1``.

    AND count: ``window * (l-1)`` adders + ``(window-1) * (2l-1)`` maxes
    + ``(l-1)`` reshare.
    """
    if window < 1:
        raise ConfigError("pool window must be positive")
    circ = Circuit()
    y0 = [circ.evaluator_input(bits) for _ in range(window)]
    y1 = [circ.garbler_input(bits) for _ in range(window)]
    z1 = circ.garbler_input(bits)
    elems = [add_words(circ, a, b) for a, b in zip(y0, y1)]
    while len(elems) > 1:
        paired = []
        for i in range(0, len(elems) - 1, 2):
            paired.append(max_words(circ, elems[i], elems[i + 1]))
        if len(elems) % 2:
            paired.append(elems[-1])
        elems = paired
    z0 = sub_words(circ, elems[0], z1)
    circ.mark_outputs(z0)
    circ.validate()
    return circ


def piecewise_sigmoid_template(bits: int) -> Circuit:
    """SecureML's 3-piece sigmoid approximation as an Algorithm-2 circuit.

    ``f(y) = 0`` for ``y < -1/2``; ``y + 1/2`` for ``|y| <= 1/2``; ``1``
    for ``y > 1/2`` — all in the caller's fixed-point encoding, so the
    constants ``1/2`` and ``1`` enter as (public) *garbler-supplied input
    words* rather than baked-in wires; the garbler must feed the encoded
    constants (see :func:`repro.core.relu.sigmoid_layer_client`).

    Garbler inputs, in order: ``y1``, ``z1``, ``half``, ``one``.
    AND count: ``6l - 4``.
    """
    circ = Circuit()
    y0 = circ.evaluator_input(bits)
    y1 = circ.garbler_input(bits)
    z1 = circ.garbler_input(bits)
    half = circ.garbler_input(bits)
    one = circ.garbler_input(bits)
    y = add_words(circ, y0, y1)
    shifted = add_words(circ, y, half)  # y + 1/2
    above_lo = circ.inv(shifted[-1])  # y >= -1/2
    upper = sub_words(circ, y, half)  # y - 1/2
    above_hi = circ.inv(upper[-1])  # y >= 1/2
    mid = and_broadcast(circ, above_lo, shifted)  # 0 or y + 1/2
    clamped = mux_words(circ, above_hi, one, mid)
    z0 = sub_words(circ, clamped, z1)
    circ.mark_outputs(z0)
    circ.validate()
    return circ


def generic_activation_template(bits: int, f_builder) -> Circuit:
    """Algorithm 2 for an arbitrary activation.

    ``f_builder(circ, y_wires) -> f_wires`` implements the non-linear
    function on reconstructed ``y``; the template wraps it with the
    reconstruction adder and the ``- z1`` reshare.
    """
    circ = Circuit()
    y0 = circ.evaluator_input(bits)
    y1 = circ.garbler_input(bits)
    z1 = circ.garbler_input(bits)
    y = add_words(circ, y0, y1)
    f_y = f_builder(circ, y)
    if len(f_y) != bits:
        raise ConfigError("activation builder must preserve word width")
    z0 = sub_words(circ, f_y, z1)
    circ.mark_outputs(z0)
    circ.validate()
    return circ
