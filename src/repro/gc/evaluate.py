"""Half-gates evaluation, batched over instances.

The evaluator holds exactly one active label per wire per instance and
never learns truth values except for wires whose decode bits the garbler
disclosed.  Mirrors :mod:`repro.gc.garble` gate for gate.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import CryptoError, ProtocolError
from repro.gc.circuit import Circuit, GateOp
from repro.gc.garble import LABEL_WORDS, _check_poison, _label_buffer, _LabelHasher

_U64 = np.uint64


def _evaluate_and(
    active: np.ndarray,
    gate,
    g_idx: int,
    hasher: _LabelHasher,
    t_g: np.ndarray,
    t_e: np.ndarray,
) -> None:
    """Evaluate one AND gate in place (mirror of ``garble._garble_and``).

    Shared by the one-shot :func:`evaluate` and the chunked streamer
    (:mod:`repro.gc.stream`) so the two paths cannot drift.
    """
    w_a = active[gate.a]
    w_b = active[gate.b]
    s_a = (w_a[:, 0] & _U64(1)).astype(bool)
    s_b = (w_b[:, 0] & _U64(1)).astype(bool)
    w_g = hasher(w_a, 2 * g_idx) ^ np.where(s_a[:, None], t_g, _U64(0))
    w_e = hasher(w_b, 2 * g_idx + 1) ^ np.where(s_b[:, None], t_e ^ w_a, _U64(0))
    active[gate.out] = w_g ^ w_e


def evaluate(
    circuit: Circuit,
    tables: np.ndarray,
    garbler_labels: np.ndarray,
    evaluator_labels: np.ndarray,
    ro: RandomOracle = default_ro,
) -> np.ndarray:
    """Evaluate the garbled circuit; returns active output labels.

    ``garbler_labels`` / ``evaluator_labels`` are the active labels for the
    respective input wire lists, shaped ``(n_inputs, n_inst, 2)``.  The
    result is ``(n_outputs, n_inst, 2)``.
    """
    n_inst = garbler_labels.shape[1] if garbler_labels.size else evaluator_labels.shape[1]
    if garbler_labels.shape[0] != len(circuit.garbler_inputs):
        raise CryptoError("wrong number of garbler input labels")
    if evaluator_labels.shape[0] != len(circuit.evaluator_inputs):
        raise CryptoError("wrong number of evaluator input labels")
    if tables.shape[:1] != (circuit.and_count,):
        raise ProtocolError(
            f"expected {circuit.and_count} garbled tables, got {tables.shape[0]}"
        )

    active = _label_buffer((circuit.n_wires, n_inst, LABEL_WORDS))
    active[circuit.garbler_inputs] = garbler_labels
    active[circuit.evaluator_inputs] = evaluator_labels

    hasher = _LabelHasher(n_inst, ro)
    and_idx = 0
    for g_idx, gate in enumerate(circuit.gates):
        if gate.op == GateOp.XOR:
            active[gate.out] = active[gate.a] ^ active[gate.b]
        elif gate.op == GateOp.INV:
            active[gate.out] = active[gate.a]  # garbler flipped the decode side
        else:
            _evaluate_and(
                active, gate, g_idx, hasher, tables[and_idx, :, 0], tables[and_idx, :, 1]
            )
            and_idx += 1

    out = active[circuit.outputs].copy()
    _check_poison(out, "output")
    return out


def decode_outputs(output_labels: np.ndarray, decode_bits: np.ndarray) -> np.ndarray:
    """Turn active output labels into cleartext bits.

    ``decode_bits`` are the garbler's permute bits for the output wires
    (:meth:`repro.gc.garble.GarbledCircuit.output_decode_bits`).  Returns
    an ``(n_outputs, n_inst)`` uint8 array.
    """
    select = (output_labels[..., 0] & _U64(1)).astype(np.uint8)
    if select.shape != decode_bits.shape:
        raise ProtocolError(
            f"decode shape mismatch: {select.shape} vs {decode_bits.shape}"
        )
    return select ^ decode_bits
