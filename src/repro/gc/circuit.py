"""Boolean circuit templates for garbling.

A :class:`Circuit` is a DAG of XOR / AND / INV gates over single-bit
wires, with inputs split by owner (garbler vs evaluator) and an ordered
list of output wires.  XOR and INV are free under free-XOR garbling; AND
gates cost two ciphertexts each (half-gates), so :meth:`Circuit.and_count`
is the communication- and time-relevant size measure — the paper's
"non-XOR gates".

Circuits are built through the fluent helpers (:meth:`xor`, :meth:`and_`,
:meth:`inv`, ...) and are immutable once garbled (garbling only reads).
:meth:`eval_plain` provides the semantics against which the garbled
execution is tested.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError


class GateOp(enum.IntEnum):
    XOR = 0
    AND = 1
    INV = 2


@dataclass(frozen=True)
class Gate:
    op: GateOp
    a: int
    b: int  # unused (-1) for INV
    out: int


@dataclass
class Circuit:
    """A boolean circuit template with owner-tagged inputs."""

    n_wires: int = 0
    gates: list[Gate] = field(default_factory=list)
    garbler_inputs: list[int] = field(default_factory=list)
    evaluator_inputs: list[int] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def new_wire(self) -> int:
        wire = self.n_wires
        self.n_wires += 1
        return wire

    def garbler_input(self, count: int = 1) -> list[int]:
        wires = [self.new_wire() for _ in range(count)]
        self.garbler_inputs.extend(wires)
        return wires

    def evaluator_input(self, count: int = 1) -> list[int]:
        wires = [self.new_wire() for _ in range(count)]
        self.evaluator_inputs.extend(wires)
        return wires

    def xor(self, a: int, b: int) -> int:
        out = self.new_wire()
        self.gates.append(Gate(GateOp.XOR, a, b, out))
        return out

    def and_(self, a: int, b: int) -> int:
        out = self.new_wire()
        self.gates.append(Gate(GateOp.AND, a, b, out))
        return out

    def inv(self, a: int) -> int:
        out = self.new_wire()
        self.gates.append(Gate(GateOp.INV, a, -1, out))
        return out

    def or_(self, a: int, b: int) -> int:
        """a OR b = NOT(NOT a AND NOT b) — one AND gate."""
        return self.inv(self.and_(self.inv(a), self.inv(b)))

    def mark_outputs(self, wires: list[int]) -> None:
        self.outputs.extend(wires)

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    @property
    def and_count(self) -> int:
        """Number of non-free gates (the paper's cost measure for GC)."""
        return sum(1 for g in self.gates if g.op == GateOp.AND)

    def validate(self) -> None:
        """Check the wiring is a well-formed single-assignment DAG."""
        defined = set(self.garbler_inputs) | set(self.evaluator_inputs)
        for gate in self.gates:
            if gate.a not in defined or (gate.op != GateOp.INV and gate.b not in defined):
                raise ConfigError(f"gate {gate} reads an undefined wire")
            if gate.out in defined:
                raise ConfigError(f"gate {gate} overwrites wire {gate.out}")
            defined.add(gate.out)
        missing = [w for w in self.outputs if w not in defined]
        if missing:
            raise ConfigError(f"output wires {missing} are never driven")

    # ------------------------------------------------------------------ #
    # plaintext semantics
    # ------------------------------------------------------------------ #
    def eval_plain(self, garbler_bits, evaluator_bits) -> np.ndarray:
        """Evaluate in the clear; inputs/outputs are (n_inst, n_bits) arrays.

        Scalars/1-D inputs are promoted to one instance.  Returns an
        ``(n_inst, n_outputs)`` uint8 array.
        """
        g = np.atleast_2d(np.asarray(garbler_bits, dtype=np.uint8))
        e = np.atleast_2d(np.asarray(evaluator_bits, dtype=np.uint8))
        if g.shape[1] != len(self.garbler_inputs):
            raise ConfigError(
                f"expected {len(self.garbler_inputs)} garbler bits, got {g.shape[1]}"
            )
        if e.shape[1] != len(self.evaluator_inputs):
            raise ConfigError(
                f"expected {len(self.evaluator_inputs)} evaluator bits, got {e.shape[1]}"
            )
        n_inst = max(g.shape[0], e.shape[0])
        values = np.zeros((self.n_wires, n_inst), dtype=np.uint8)
        values[self.garbler_inputs, :] = g.T
        values[self.evaluator_inputs, :] = e.T
        for gate in self.gates:
            if gate.op == GateOp.XOR:
                values[gate.out] = values[gate.a] ^ values[gate.b]
            elif gate.op == GateOp.AND:
                values[gate.out] = values[gate.a] & values[gate.b]
            else:
                values[gate.out] = values[gate.a] ^ 1
        return values[self.outputs].T.copy()
