"""Two-party garbled-circuit execution over a channel.

Roles follow ABNN2's non-linear layer: the **client garbles** and the
**server evaluates** (the server's share ``z0`` is the circuit's output,
so the evaluator is the output party).  The server's input bits enter via
1-out-of-2 OT on wire labels (IKNP sessions, amortized across layers).

Message flow per execution:

1. garbler -> evaluator: garbled tables, active labels for the garbler's
   own inputs, and the output decode bits;
2. IKNP chosen-message OT: evaluator obtains active labels for its input
   bits (label pairs are the OT messages);
3. evaluator computes locally and decodes its outputs.

:class:`GcSessions` bundles the OT session so callers that run many GC
layers over one channel pay the 128 base OTs once.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.crypto.iknp import OtExtReceiver, OtExtSender
from repro.errors import ProtocolError
from repro.gc.circuit import Circuit
from repro.gc.evaluate import decode_outputs, evaluate
from repro.gc.garble import LABEL_WORDS, garble
from repro.net.channel import Channel
from repro.perf.trace import channel_span

_U64 = np.uint64
_OT_DOMAIN_GC_INPUTS = 11


class GcSessions:
    """Per-channel lazy OT session reused across GC executions."""

    def __init__(
        self,
        chan: Channel,
        role: str,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
        session_tag: int = 0,
    ) -> None:
        if role not in ("garbler", "evaluator"):
            raise ProtocolError(f"unknown GC role {role!r}")
        self.chan = chan
        self.role = role
        self.group = group
        self.ro = ro
        self._seed = seed
        self._session_tag = session_tag
        self._ot = None

    @property
    def ot(self):
        if self._ot is None:
            if self.role == "garbler":
                self._ot = OtExtSender(
                    self.chan, group=self.group, ro=self.ro, seed=self._seed,
                    session_tag=self._session_tag,
                )
            else:
                self._ot = OtExtReceiver(
                    self.chan, group=self.group, ro=self.ro, seed=self._seed,
                    session_tag=self._session_tag,
                )
        return self._ot


def run_garbler(
    chan: Channel,
    circuit: Circuit,
    garbler_bits: np.ndarray,
    n_inst: int,
    sessions: GcSessions,
    rng: np.random.Generator,
    ro: RandomOracle = default_ro,
) -> None:
    """Garble ``circuit`` and drive the garbler side of one execution.

    ``garbler_bits`` has shape ``(n_garbler_inputs, n_inst)``.
    """
    with channel_span(chan, "garble", n_inst=n_inst, and_gates=circuit.and_count):
        gc = garble(circuit, n_inst, rng, ro)
        own_labels = gc.encode(circuit.garbler_inputs, garbler_bits)
    with channel_span(chan, "gc-transfer", n_inst=n_inst):
        chan.send((gc.tables, own_labels, gc.output_decode_bits()))

        n_eval_bits = len(circuit.evaluator_inputs)
        if n_eval_bits:
            # Label pairs for the evaluator's inputs, wire-major then instance.
            base = gc.label0[circuit.evaluator_inputs].reshape(-1, LABEL_WORDS)
            pairs = np.empty((base.shape[0], 2, LABEL_WORDS), dtype=_U64)
            pairs[:, 0] = base
            pairs[:, 1] = base ^ gc.offset
            sessions.ot.send_chosen(pairs, domain=_OT_DOMAIN_GC_INPUTS)


def run_evaluator(
    chan: Channel,
    circuit: Circuit,
    evaluator_bits: np.ndarray,
    n_inst: int,
    sessions: GcSessions,
    ro: RandomOracle = default_ro,
) -> np.ndarray:
    """Evaluate one garbled execution; returns ``(n_outputs, n_inst)`` bits.

    ``evaluator_bits`` has shape ``(n_evaluator_inputs, n_inst)``.
    """
    bits = np.asarray(evaluator_bits, dtype=np.uint8)
    n_eval_bits = len(circuit.evaluator_inputs)
    if bits.shape != (n_eval_bits, n_inst):
        raise ProtocolError(
            f"expected evaluator bits of shape {(n_eval_bits, n_inst)}, got {bits.shape}"
        )
    with channel_span(chan, "gc-transfer", n_inst=n_inst):
        tables, garbler_labels, decode_bits = chan.recv()
        if n_eval_bits:
            my_labels = sessions.ot.recv_chosen(
                bits.reshape(-1), LABEL_WORDS, domain=_OT_DOMAIN_GC_INPUTS
            ).reshape(n_eval_bits, n_inst, LABEL_WORDS)
        else:
            my_labels = np.zeros((0, n_inst, LABEL_WORDS), dtype=_U64)

    with channel_span(chan, "evaluate", n_inst=n_inst):
        out_labels = evaluate(circuit, tables, garbler_labels, my_labels, ro)
        return decode_outputs(out_labels, decode_bits)
