"""Exception hierarchy for the ABNN2 reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  The subclasses mirror
the major subsystems: protocol-level failures, cryptographic misuse,
configuration mistakes, and network/channel problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """A parameter (ring width, fragment scheme, batch size, ...) is invalid."""


class ProtocolError(ReproError, RuntimeError):
    """A two-party protocol received malformed or out-of-order messages."""


class CryptoError(ReproError, RuntimeError):
    """A cryptographic primitive was misused or failed an internal check."""


class ChannelError(ReproError, RuntimeError):
    """The communication channel was closed or used incorrectly."""


class HandshakeError(ChannelError):
    """The transport-level session handshake failed (version, party, or
    session-id mismatch) — the peers must not exchange protocol traffic."""


class QuantizationError(ReproError, ValueError):
    """A value or model cannot be represented in the requested quantized form."""


class AdmissionDenied(ProtocolError):
    """The serving layer refused a round before any protocol bytes flowed
    (queue backpressure, bank-depth threshold, or exhaustion) — the peer
    receives a structured deny on the control plane, never a desync."""
