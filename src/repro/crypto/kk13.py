"""KK13 1-out-of-N OT extension (Kolesnikov–Kumaresan, CRYPTO'13).

The paper's matrix-multiplication protocol is built directly on this
primitive (its Figure 1 ideal functionality).  Structure mirrors IKNP
(:mod:`repro.crypto.iknp`) with two changes:

* the bit-matrix width grows to ``2 * kappa = 256`` columns, and
* the receiver's row ``i`` encodes its choice ``b_i in [N]`` as the
  Walsh–Hadamard codeword ``C(b_i)`` instead of a repetition code, so the
  sender's rows satisfy ``q_i = t_i xor (C(b_i) & s)`` and message ``j``
  is masked by ``H(i, q_i xor (C(j) & s))``.

Both the *random-OT* form (each side learns pads; the ABNN2 one-batch
optimization needs raw pads) and the *chosen-message* form are provided.
Sessions amortize their 256 base OTs across arbitrarily many batches.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import baseot, codes
from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.crypto.iknp import _checked_u_blob, _rows_with_index, _session_base_index
from repro.crypto.prg import BatchPrg
from repro.errors import CryptoError
from repro.net.channel import Channel
from repro.perf.trace import channel_span
from repro.utils.bits import (
    concat_packed_rows,
    pack_bits_to_words,
    split_packed_rows,
    transpose_packed,
    unpack_words_to_bits,
)
from repro.utils.rng import make_rng, randbelow_from_rng

_U64 = np.uint64
_ALL_ONES = _U64(0xFFFFFFFFFFFFFFFF)

CODE_WIDTH = codes.CODE_LENGTH  # 256 columns
_CODE_WORDS = CODE_WIDTH // 64


class Kk13Sender:
    """The party holding ``N`` messages per OT (ABNN2's *client*)."""

    def __init__(
        self,
        chan: Channel,
        n_values: int,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
        session_tag: int = 0,
    ) -> None:
        if not 2 <= n_values <= codes.MAX_N:
            raise CryptoError(f"N must be in [2, {codes.MAX_N}], got {n_values}")
        self.chan = chan
        self.n_values = n_values
        self.group = group
        self.ro = ro
        self._rng = make_rng(seed)
        self._code_words = codes.codeword_words(n_values)
        self._s_bits: np.ndarray | None = None
        self._prg: BatchPrg | None = None
        self._ot_index = _session_base_index(session_tag)

    def _randbelow(self, bound: int) -> int:
        return randbelow_from_rng(self._rng, bound)

    def _ensure_setup(self) -> None:
        if self._s_bits is not None:
            return
        s = self._rng.integers(0, 2, size=CODE_WIDTH, dtype=np.uint8)
        with channel_span(
            self.chan, "base-ot", kind="kk13", count=CODE_WIDTH,
            element_bytes=self.group.element_bytes,
        ):
            keys = baseot.random_receive(
                self.chan, s.tolist(), self.group, randbelow=self._randbelow
            )
        self._s_bits = s
        self._prg = BatchPrg(keys)
        self._s_words = pack_bits_to_words(s)
        self._s_colmask = (s.astype(_U64) * _ALL_ONES)[:, None]
        # (C(j) & s) pre-masked once per codeword.
        self._coded_s = self._code_words & self._s_words[None, :]

    def _extend(self, m: int) -> np.ndarray:
        """Consume the receiver's U matrix; return Q rows (m, 4 words).

        Fully word-packed (see :meth:`OtExtReceiver._extend` in
        :mod:`repro.crypto.iknp`): batched PRG block, one masked XOR,
        packed 64x64-block transpose — no ``(256, m)`` uint8 expansion.
        """
        self._ensure_setup()
        with channel_span(self.chan, "extension", m=m):
            u_blob = _checked_u_blob(self.chan.recv(), CODE_WIDTH, m)
            u_cols = split_packed_rows(u_blob, CODE_WIDTH, m)
            q_cols = self._prg.packed_bits(m) ^ (u_cols & self._s_colmask)
            return transpose_packed(q_cols)[:m]

    # ------------------------------------------------------------------ #
    def pads(self, m: int, width: int, domain: int = 3) -> np.ndarray:
        """Random-OT sender side: the full pad tensor ``(m, N, W)``.

        ``pads[i, j]`` is the mask the receiver can recover iff its choice
        for OT ``i`` was ``j``.  The caller XORs messages onto these pads
        (chosen-message mode) or uses pad 0 directly as a share (the
        ABNN2 one-batch optimization).
        """
        q = self._extend(m)
        # One preallocated (m, N, 5) hash-input tensor: q_i xor (C(j) & s)
        # written straight into the first 4 words, OT index in the fifth —
        # no per-chunk concatenate of broadcast temporaries.
        rows = np.empty((m, self.n_values, _CODE_WORDS + 1), dtype=_U64)
        np.bitwise_xor(q[:, None, :], self._coded_s[None, :, :], out=rows[:, :, :_CODE_WORDS])
        rows[:, :, _CODE_WORDS] = (np.arange(m, dtype=_U64) + _U64(self._ot_index))[:, None]
        out = self.ro.mask(rows, width, domain)
        self._ot_index += m
        return out

    def send_chosen(self, messages: np.ndarray, domain: int = 3) -> None:
        """Chosen-message mode: transmit all N masked messages per OT."""
        msgs = np.asarray(messages, dtype=_U64)
        if msgs.ndim != 3 or msgs.shape[1] != self.n_values:
            raise CryptoError(f"expected (m, {self.n_values}, W) messages, got {msgs.shape}")
        pads = self.pads(msgs.shape[0], msgs.shape[2], domain)
        with channel_span(
            self.chan, "ot-transfer", m=int(msgs.shape[0]), width=int(msgs.shape[2])
        ):
            self.chan.send(msgs ^ pads)


class Kk13Receiver:
    """The party holding one choice ``b_i in [N]`` per OT (ABNN2's *server*)."""

    def __init__(
        self,
        chan: Channel,
        n_values: int,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
        session_tag: int = 0,
    ) -> None:
        if not 2 <= n_values <= codes.MAX_N:
            raise CryptoError(f"N must be in [2, {codes.MAX_N}], got {n_values}")
        self.chan = chan
        self.n_values = n_values
        self.group = group
        self.ro = ro
        self._rng = make_rng(seed)
        self._code_words = codes.codeword_words(n_values)
        # Column j of the choice-codeword matrix is the XOR of the
        # indicator masks of the values whose codeword has bit j set;
        # precompute, per value, which columns it feeds.
        code_bits = unpack_words_to_bits(self._code_words, CODE_WIDTH)
        self._code_col_idx = [np.nonzero(code_bits[v])[0] for v in range(n_values)]
        self._prg0: BatchPrg | None = None
        self._prg1: BatchPrg | None = None
        self._ot_index = _session_base_index(session_tag)

    def _randbelow(self, bound: int) -> int:
        return randbelow_from_rng(self._rng, bound)

    def _ensure_setup(self) -> None:
        if self._prg0 is not None:
            return
        with channel_span(
            self.chan, "base-ot", kind="kk13", count=CODE_WIDTH,
            element_bytes=self.group.element_bytes,
        ):
            key_pairs = baseot.random_send(
                self.chan, CODE_WIDTH, self.group, randbelow=self._randbelow
            )
        self._prg0 = BatchPrg([k0 for k0, _ in key_pairs])
        self._prg1 = BatchPrg([k1 for _, k1 in key_pairs])

    def _extend(self, choices: np.ndarray) -> np.ndarray:
        """Send the U matrix; return T rows (m, 4 words).

        Word-packed throughout.  The codeword column matrix never
        materializes row-wise: column ``j`` of ``C(b_i)`` stacked over
        ``i`` equals the XOR of the packed indicator masks
        ``[b == v]`` over the values ``v`` whose codeword has bit ``j``
        set, so ``N`` packed masks replace an ``(m, 4)``-word transpose.
        """
        self._ensure_setup()
        b = np.asarray(choices, dtype=np.int64)
        if b.ndim != 1 or (b < 0).any() or (b >= self.n_values).any():
            raise CryptoError(f"choices must lie in [0, {self.n_values})")
        m = b.shape[0]
        with channel_span(self.chan, "extension", m=m):
            m_words = (m + 63) // 64
            code_cols = np.zeros((CODE_WIDTH, m_words), dtype=_U64)
            for v, col_idx in enumerate(self._code_col_idx):
                code_cols[col_idx] ^= pack_bits_to_words((b == v).view(np.uint8))[None, :]
            t0 = self._prg0.packed_bits(m)
            t1 = self._prg1.packed_bits(m)
            u = t0 ^ t1
            u ^= code_cols
            self.chan.send(concat_packed_rows(u, m))
            return transpose_packed(t0)[:m]

    # ------------------------------------------------------------------ #
    def pads(self, choices, width: int, domain: int = 3) -> np.ndarray:
        """Random-OT receiver side: the pad at the chosen slot, ``(m, W)``."""
        t = self._extend(np.asarray(choices))
        out = self.ro.mask(_rows_with_index(t, self._ot_index), width, domain)
        self._ot_index += np.asarray(choices).shape[0]
        return out

    def recv_chosen(self, choices, width: int, domain: int = 3) -> np.ndarray:
        """Chosen-message mode: recover message ``b_i`` per OT, ``(m, W)``."""
        b = np.asarray(choices, dtype=np.int64)
        pad = self.pads(b, width, domain)
        with channel_span(self.chan, "ot-transfer", m=int(b.shape[0]), width=width):
            cipher = self.chan.recv()
        if cipher.shape != (b.shape[0], self.n_values, width):
            raise CryptoError(f"unexpected ciphertext shape {cipher.shape}")
        return cipher[np.arange(b.shape[0]), b] ^ pad
