"""KK13 1-out-of-N OT extension (Kolesnikov–Kumaresan, CRYPTO'13).

The paper's matrix-multiplication protocol is built directly on this
primitive (its Figure 1 ideal functionality).  Structure mirrors IKNP
(:mod:`repro.crypto.iknp`) with two changes:

* the bit-matrix width grows to ``2 * kappa = 256`` columns, and
* the receiver's row ``i`` encodes its choice ``b_i in [N]`` as the
  Walsh–Hadamard codeword ``C(b_i)`` instead of a repetition code, so the
  sender's rows satisfy ``q_i = t_i xor (C(b_i) & s)`` and message ``j``
  is masked by ``H(i, q_i xor (C(j) & s))``.

Both the *random-OT* form (each side learns pads; the ABNN2 one-batch
optimization needs raw pads) and the *chosen-message* form are provided.
Sessions amortize their 256 base OTs across arbitrarily many batches.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import baseot, codes
from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.crypto.prg import Prg
from repro.errors import CryptoError
from repro.net.channel import Channel
from repro.utils.bits import pack_bits, unpack_bits
from repro.utils.rng import make_rng, randbelow_from_rng

_U64 = np.uint64

CODE_WIDTH = codes.CODE_LENGTH  # 256 columns
_CODE_WORDS = CODE_WIDTH // 64


def _pack_rows_u64(bit_matrix: np.ndarray) -> np.ndarray:
    m, width = bit_matrix.shape
    packed = np.packbits(bit_matrix, axis=1, bitorder="little")
    return packed.view(np.uint64).reshape(m, width // 64)


def _rows_with_index(packed_rows: np.ndarray, start_index: int) -> np.ndarray:
    m = packed_rows.shape[0]
    idx = (np.arange(m, dtype=_U64) + _U64(start_index))[:, None]
    return np.concatenate([packed_rows, idx], axis=1)


class Kk13Sender:
    """The party holding ``N`` messages per OT (ABNN2's *client*)."""

    def __init__(
        self,
        chan: Channel,
        n_values: int,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
    ) -> None:
        if not 2 <= n_values <= codes.MAX_N:
            raise CryptoError(f"N must be in [2, {codes.MAX_N}], got {n_values}")
        self.chan = chan
        self.n_values = n_values
        self.group = group
        self.ro = ro
        self._rng = make_rng(seed)
        self._code_words = codes.codeword_words(n_values)
        self._s_bits: np.ndarray | None = None
        self._prgs: list[Prg] | None = None
        self._ot_index = 0

    def _randbelow(self, bound: int) -> int:
        return randbelow_from_rng(self._rng, bound)

    def _ensure_setup(self) -> None:
        if self._s_bits is not None:
            return
        s = self._rng.integers(0, 2, size=CODE_WIDTH, dtype=np.uint8)
        keys = baseot.random_receive(self.chan, s.tolist(), self.group, randbelow=self._randbelow)
        self._s_bits = s
        self._prgs = [Prg(k) for k in keys]
        self._s_words = _pack_rows_u64(s[None, :])[0]
        # (C(j) & s) pre-masked once per codeword.
        self._coded_s = self._code_words & self._s_words[None, :]

    def _extend(self, m: int) -> np.ndarray:
        """Consume the receiver's U matrix; return Q rows (m, 4 words)."""
        self._ensure_setup()
        u_blob = self.chan.recv()
        u_cols = unpack_bits(u_blob, CODE_WIDTH * m).reshape(CODE_WIDTH, m)
        q_cols = np.empty((CODE_WIDTH, m), dtype=np.uint8)
        for j in range(CODE_WIDTH):
            stream = self._prgs[j].bits(m)
            if self._s_bits[j]:
                stream = stream ^ u_cols[j]
            q_cols[j] = stream
        return _pack_rows_u64(np.ascontiguousarray(q_cols.T))

    # ------------------------------------------------------------------ #
    def pads(self, m: int, width: int, domain: int = 3) -> np.ndarray:
        """Random-OT sender side: the full pad tensor ``(m, N, W)``.

        ``pads[i, j]`` is the mask the receiver can recover iff its choice
        for OT ``i`` was ``j``.  The caller XORs messages onto these pads
        (chosen-message mode) or uses pad 0 directly as a share (the
        ABNN2 one-batch optimization).
        """
        q = self._extend(m)
        # (m, N, 4): q_i xor (C(j) & s)
        mixed = q[:, None, :] ^ self._coded_s[None, :, :]
        rows = np.concatenate(
            [
                mixed,
                np.broadcast_to(
                    (np.arange(m, dtype=_U64) + _U64(self._ot_index))[:, None, None],
                    (m, self.n_values, 1),
                ),
            ],
            axis=2,
        )
        out = self.ro.mask(rows, width, domain)
        self._ot_index += m
        return out

    def send_chosen(self, messages: np.ndarray, domain: int = 3) -> None:
        """Chosen-message mode: transmit all N masked messages per OT."""
        msgs = np.asarray(messages, dtype=_U64)
        if msgs.ndim != 3 or msgs.shape[1] != self.n_values:
            raise CryptoError(f"expected (m, {self.n_values}, W) messages, got {msgs.shape}")
        pads = self.pads(msgs.shape[0], msgs.shape[2], domain)
        self.chan.send(msgs ^ pads)


class Kk13Receiver:
    """The party holding one choice ``b_i in [N]`` per OT (ABNN2's *server*)."""

    def __init__(
        self,
        chan: Channel,
        n_values: int,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
    ) -> None:
        if not 2 <= n_values <= codes.MAX_N:
            raise CryptoError(f"N must be in [2, {codes.MAX_N}], got {n_values}")
        self.chan = chan
        self.n_values = n_values
        self.group = group
        self.ro = ro
        self._rng = make_rng(seed)
        self._code_bits = codes.codeword_bits(n_values)
        self._prg_pairs: list[tuple[Prg, Prg]] | None = None
        self._ot_index = 0

    def _randbelow(self, bound: int) -> int:
        return randbelow_from_rng(self._rng, bound)

    def _ensure_setup(self) -> None:
        if self._prg_pairs is not None:
            return
        key_pairs = baseot.random_send(
            self.chan, CODE_WIDTH, self.group, randbelow=self._randbelow
        )
        self._prg_pairs = [(Prg(k0), Prg(k1)) for k0, k1 in key_pairs]

    def _extend(self, choices: np.ndarray) -> np.ndarray:
        """Send the U matrix; return T rows (m, 4 words)."""
        self._ensure_setup()
        b = np.asarray(choices, dtype=np.int64)
        if b.ndim != 1 or (b < 0).any() or (b >= self.n_values).any():
            raise CryptoError(f"choices must lie in [0, {self.n_values})")
        m = b.shape[0]
        # Row i of the code matrix is C(b_i); we need its columns.
        code_cols = self._code_bits[b].T  # (256, m)
        t_cols = np.empty((CODE_WIDTH, m), dtype=np.uint8)
        u_cols = np.empty((CODE_WIDTH, m), dtype=np.uint8)
        for j in range(CODE_WIDTH):
            t0 = self._prg_pairs[j][0].bits(m)
            t1 = self._prg_pairs[j][1].bits(m)
            t_cols[j] = t0
            u_cols[j] = t0 ^ t1 ^ code_cols[j]
        self.chan.send(pack_bits(u_cols))
        return _pack_rows_u64(np.ascontiguousarray(t_cols.T))

    # ------------------------------------------------------------------ #
    def pads(self, choices, width: int, domain: int = 3) -> np.ndarray:
        """Random-OT receiver side: the pad at the chosen slot, ``(m, W)``."""
        t = self._extend(np.asarray(choices))
        out = self.ro.mask(_rows_with_index(t, self._ot_index), width, domain)
        self._ot_index += np.asarray(choices).shape[0]
        return out

    def recv_chosen(self, choices, width: int, domain: int = 3) -> np.ndarray:
        """Chosen-message mode: recover message ``b_i`` per OT, ``(m, W)``."""
        b = np.asarray(choices, dtype=np.int64)
        pad = self.pads(b, width, domain)
        cipher = self.chan.recv()
        if cipher.shape != (b.shape[0], self.n_values, width):
            raise CryptoError(f"unexpected ciphertext shape {cipher.shape}")
        return cipher[np.arange(b.shape[0]), b] ^ pad
