"""Random-oracle backends shared by the OT protocols.

Two interchangeable implementations of the same interface:

* :data:`sha256_ro` — per-row SHA-256; the conservative reference used for
  base OTs and in cross-checking tests.
* :data:`siphash_ro` — numpy-vectorized fixed-key SipHash-2-4
  (:mod:`repro.crypto.siphash`); the default for bulk OT-extension masking,
  mirroring the fixed-key AES hashing used by production OT stacks.

Both expose ``mask(rows, out_words, domain)``: hash each u64 row of
``rows`` into ``out_words`` uint64 output words, with ``domain`` giving
protocol-level separation (e.g. OT instance indices live in the row
itself; the domain separates sub-protocols).
"""

from __future__ import annotations

import hashlib
from typing import Callable

import numpy as np

from repro.crypto import siphash
from repro.errors import CryptoError

_U64 = np.uint64


class RandomOracle:
    """A deterministic hash-to-words oracle with a named backend."""

    def __init__(self, name: str, mask_fn: Callable[[np.ndarray, int, int], np.ndarray]) -> None:
        self.name = name
        self._mask_fn = mask_fn

    def mask(self, rows: np.ndarray, out_words: int, domain: int = 0) -> np.ndarray:
        """Hash each row of u64 words to ``out_words`` u64 words.

        ``rows`` has shape ``(..., words)``; the result has shape
        ``(..., out_words)``.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=_U64))
        if out_words < 1:
            raise CryptoError(f"out_words must be >= 1, got {out_words}")
        return self._mask_fn(rows, out_words, domain)

    def hash_bytes(self, data: bytes, out_len: int, domain: int = 0) -> bytes:
        """Byte-level oracle (counter-mode SHA-256 regardless of backend).

        Used by the base-OT layer where throughput is irrelevant and the
        full collision resistance of SHA-256 is the right default.
        """
        out = bytearray()
        counter = 0
        while len(out) < out_len:
            h = hashlib.sha256()
            h.update(domain.to_bytes(8, "little"))
            h.update(counter.to_bytes(8, "little"))
            h.update(data)
            out.extend(h.digest())
            counter += 1
        return bytes(out[:out_len])

    def __repr__(self) -> str:
        return f"RandomOracle({self.name})"


def _sha256_mask(rows: np.ndarray, out_words: int, domain: int) -> np.ndarray:
    lead = rows.shape[:-1]
    flat = np.ascontiguousarray(rows.reshape(-1, rows.shape[-1]))
    dom = domain.to_bytes(8, "little")
    # One digest yields four output words; precompute the counter prefixes
    # and emit each row's counter-mode stream with one-shot sha256 calls
    # (identical bytes to the incremental-update loop this replaces).
    n_hashes = (out_words + 3) // 4
    prefixes = [dom + c.to_bytes(8, "little") for c in range(n_hashes)]
    sha256 = hashlib.sha256
    row_bytes = flat.tobytes()
    stride = flat.shape[-1] * 8
    stream = b"".join(
        sha256(prefix + row_bytes[off : off + stride]).digest()
        for off in range(0, len(row_bytes), stride)
        for prefix in prefixes
    )
    out = np.frombuffer(stream, dtype=_U64).reshape(flat.shape[0], n_hashes * 4)
    return np.ascontiguousarray(out[:, :out_words]).reshape(lead + (out_words,))


def _siphash_mask(rows: np.ndarray, out_words: int, domain: int) -> np.ndarray:
    return siphash.prf_expand(rows, out_words, domain=domain)


#: Reference backend: counter-mode SHA-256 per row.
sha256_ro = RandomOracle("sha256", _sha256_mask)

#: Fast backend: vectorized fixed-key SipHash-2-4 (default for OT extension).
siphash_ro = RandomOracle("siphash24", _siphash_mask)

#: The backend protocol code uses unless told otherwise.
default_ro = siphash_ro


def get_ro(name: str) -> RandomOracle:
    """Resolve a backend by registry name.

    ``"fast"`` is the execution-optimized SipHash implementation in
    :mod:`repro.crypto.fastro` — the *same function* as ``"siphash"``
    (byte-identical masks, hence byte-identical shares and transcripts),
    so the two may even differ between the parties; ``"sha256"`` is the
    conservative reference and is **not** mask-compatible with them.
    """
    if name in ("sha256", "sha-256"):
        return sha256_ro
    if name in ("siphash", "siphash24"):
        return siphash_ro
    if name in ("fast", "siphash24-fast"):
        from repro.crypto.fastro import fast_ro

        return fast_ro
    if name == "default":
        return default_ro
    raise CryptoError(
        f"unknown random-oracle backend {name!r} "
        "(expected sha256 | siphash | fast | default)"
    )
