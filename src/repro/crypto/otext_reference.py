"""Seed-faithful per-column OT-extension engines (the pre-vectorized path).

The word-packed engines in :mod:`repro.crypto.iknp` and
:mod:`repro.crypto.kk13` promise byte-identical wire transcripts to the
original per-column implementation: expand each base-OT seed with
``Prg.bits``, XOR columns one at a time, then ``packbits``-transpose the
``(kappa, m)`` uint8 matrix.  These subclasses keep that original
``_extend`` alive verbatim so that

* the transcript cross-check tests can prove the packed pipeline changes
  nothing on the wire (same ciphertexts, pads, ``ChannelStats``), and
* ``benchmarks/bench_otext.py`` can measure the speedup against the real
  seed algorithm rather than a synthetic stand-in.

They reuse the session setup (base OTs, secrets, OT index bookkeeping)
and rebuild per-column :class:`Prg` streams from the session's
:class:`BatchPrg` seeds — valid because ``BatchPrg`` streams are
byte-identical to independently driven ``Prg`` objects.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import codes
from repro.crypto.iknp import OtExtReceiver, OtExtSender
from repro.crypto.kk13 import CODE_WIDTH, Kk13Receiver, Kk13Sender
from repro.crypto.prg import Prg
from repro.errors import CryptoError
from repro.utils.bits import pack_bits, unpack_bits


def _pack_rows_u64(bit_matrix: np.ndarray) -> np.ndarray:
    """The seed row packer: (m, width) bits -> (m, width/64) uint64."""
    m, width = bit_matrix.shape
    packed = np.packbits(bit_matrix, axis=1, bitorder="little")
    return packed.view(np.uint64).reshape(m, width // 64)


def _column_loop_receive(prgs, s_bits, u_blob: bytes, n_cols: int, m: int) -> np.ndarray:
    """The seed sender-side loop: per-column PRG expand + conditional XOR."""
    u_cols = unpack_bits(u_blob, n_cols * m).reshape(n_cols, m)
    q_cols = np.empty((n_cols, m), dtype=np.uint8)
    for j in range(n_cols):
        stream = prgs[j].bits(m)
        if s_bits[j]:
            stream = stream ^ u_cols[j]
        q_cols[j] = stream
    return _pack_rows_u64(np.ascontiguousarray(q_cols.T))


def _column_loop_send(prg_pairs, code_cols: np.ndarray, chan) -> np.ndarray:
    """The seed receiver-side loop: expand both streams, emit U columns."""
    n_cols, m = code_cols.shape
    t_cols = np.empty((n_cols, m), dtype=np.uint8)
    u_cols = np.empty((n_cols, m), dtype=np.uint8)
    for j in range(n_cols):
        t0 = prg_pairs[j][0].bits(m)
        t1 = prg_pairs[j][1].bits(m)
        t_cols[j] = t0
        u_cols[j] = t0 ^ t1 ^ code_cols[j]
    chan.send(pack_bits(u_cols))
    return _pack_rows_u64(np.ascontiguousarray(t_cols.T))


class ReferenceOtExtSender(OtExtSender):
    """IKNP extension sender running the original per-column loop."""

    def _columns(self) -> list[Prg]:
        if getattr(self, "_ref_prgs", None) is None:
            self._ref_prgs = [Prg(s) for s in self._prg.seeds]
        return self._ref_prgs

    def _extend(self, m: int) -> np.ndarray:
        self._ensure_setup()
        u_blob = self.chan.recv()
        return _column_loop_receive(self._columns(), self._s_bits, u_blob, self.kappa, m)


class ReferenceOtExtReceiver(OtExtReceiver):
    """IKNP extension receiver running the original per-column loop."""

    def _pairs(self) -> list[tuple[Prg, Prg]]:
        if getattr(self, "_ref_pairs", None) is None:
            self._ref_pairs = [
                (Prg(s0), Prg(s1))
                for s0, s1 in zip(self._prg0.seeds, self._prg1.seeds)
            ]
        return self._ref_pairs

    def _extend(self, choices: np.ndarray) -> np.ndarray:
        self._ensure_setup()
        c = np.asarray(choices, dtype=np.uint8)
        if c.ndim != 1 or not np.isin(c, (0, 1)).all():
            raise CryptoError("choices must be a 1-D bit vector")
        m = c.shape[0]
        code_cols = np.broadcast_to(c[None, :], (self.kappa, m))
        return _column_loop_send(self._pairs(), code_cols, self.chan)


class ReferenceKk13Sender(Kk13Sender):
    """KK13 sender running the original per-column loop."""

    def _columns(self) -> list[Prg]:
        if getattr(self, "_ref_prgs", None) is None:
            self._ref_prgs = [Prg(s) for s in self._prg.seeds]
        return self._ref_prgs

    def _extend(self, m: int) -> np.ndarray:
        self._ensure_setup()
        u_blob = self.chan.recv()
        return _column_loop_receive(self._columns(), self._s_bits, u_blob, CODE_WIDTH, m)


class ReferenceKk13Receiver(Kk13Receiver):
    """KK13 receiver running the original per-column loop."""

    def _pairs(self) -> list[tuple[Prg, Prg]]:
        if getattr(self, "_ref_pairs", None) is None:
            self._ref_pairs = [
                (Prg(s0), Prg(s1))
                for s0, s1 in zip(self._prg0.seeds, self._prg1.seeds)
            ]
        return self._ref_pairs

    def _extend(self, choices: np.ndarray) -> np.ndarray:
        self._ensure_setup()
        b = np.asarray(choices, dtype=np.int64)
        if b.ndim != 1 or (b < 0).any() or (b >= self.n_values).any():
            raise CryptoError(f"choices must lie in [0, {self.n_values})")
        # Row i of the code matrix is C(b_i); the loop wants its columns.
        code_cols = np.ascontiguousarray(codes.codeword_bits(self.n_values)[b].T)
        return _column_loop_send(self._pairs(), code_cols, self.chan)
