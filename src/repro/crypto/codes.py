"""Walsh–Hadamard codes for the KK13 1-out-of-N OT extension.

KK13 replaces IKNP's repetition encoding of the choice bit with a code of
minimum distance >= kappa.  For ``N <= 256`` the Walsh–Hadamard code of
length ``2 * kappa = 256`` fits: codeword ``j`` has bit ``k`` equal to the
parity of ``j & k``, and any two distinct codewords differ in exactly 128
positions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CryptoError

CODE_LENGTH = 256
MAX_N = 256


def codeword_bits(n_codewords: int) -> np.ndarray:
    """The first ``n_codewords`` WH codewords as an (N, 256) 0/1 matrix."""
    if not 2 <= n_codewords <= MAX_N:
        raise CryptoError(f"N must be in [2, {MAX_N}], got {n_codewords}")
    j = np.arange(n_codewords, dtype=np.uint32)[:, None]
    k = np.arange(CODE_LENGTH, dtype=np.uint32)[None, :]
    anded = j & k
    # Parity of each 8-bit-chunked popcount; values < 256 so one byte is enough.
    pop = np.zeros_like(anded)
    v = anded.copy()
    while v.any():
        pop ^= v & 1
        v >>= 1
    return pop.astype(np.uint8)


def codeword_words(n_codewords: int) -> np.ndarray:
    """Codewords packed into (N, 4) uint64 rows (LSB-first bit order)."""
    bits = codeword_bits(n_codewords)
    packed = np.packbits(bits, axis=1, bitorder="little")
    return packed.view(np.uint64).reshape(n_codewords, CODE_LENGTH // 64)


def minimum_distance(n_codewords: int) -> int:
    """Exact minimum pairwise Hamming distance of the first N codewords."""
    bits = codeword_bits(n_codewords)
    best = CODE_LENGTH
    for i in range(n_codewords):
        diff = bits[i + 1 :] ^ bits[i]
        if diff.size:
            best = min(best, int(diff.sum(axis=1).min()))
    return best
