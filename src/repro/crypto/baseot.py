"""Base 1-out-of-2 oblivious transfers (Chou–Orlandi style).

OT extension bootstraps from ``kappa`` public-key OTs.  We implement the
"simplest OT" pattern over a MODP group:

* the sender publishes ``A = g^a``;
* for OT ``i`` the receiver with choice bit ``c_i`` sends
  ``B_i = g^{b_i} * A^{c_i}``;
* both sides derive symmetric keys —
  sender: ``k_{i,j} = H(i, (B_i * A^{-j})^a)``,
  receiver: ``k_{i,c_i} = H(i, A^{b_i})`` —
  and the sender masks its two messages with the two keys.

The random-OT variants (:func:`random_send`, :func:`random_receive`)
return the derived keys themselves, which is exactly what IKNP consumes
as PRG seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import sha256_ro
from repro.errors import CryptoError
from repro.net.channel import Channel
from repro.utils.bits import xor_bytes

KEY_BYTES = 16
_DOMAIN_BASEOT = 0x42415345  # "BASE"


@dataclass
class _SenderState:
    group: ModpGroup
    a: int
    big_a: int
    inv_big_a: int


def _derive_key(group: ModpGroup, index: int, shared: int) -> bytes:
    data = index.to_bytes(8, "little") + group.encode(shared)
    return sha256_ro.hash_bytes(data, KEY_BYTES, domain=_DOMAIN_BASEOT)


def random_send(
    chan: Channel,
    count: int,
    group: ModpGroup = DEFAULT_GROUP,
    randbelow=None,
) -> list[tuple[bytes, bytes]]:
    """Sender side of ``count`` random OTs; returns ``(k0, k1)`` per OT."""
    if count < 1:
        raise CryptoError("need at least one base OT")
    a = group.sample_exponent(randbelow)
    big_a = group.gpow(a)
    chan.send(group.encode(big_a))
    inv_big_a = group.invert(big_a)

    blob = chan.recv()
    if len(blob) != count * group.element_bytes:
        raise CryptoError("unexpected base-OT response size")
    keys = []
    size = group.element_bytes
    for i in range(count):
        b_elem = group.decode(blob[i * size : (i + 1) * size])
        shared0 = group.power(b_elem, a)
        shared1 = group.power(group.mul(b_elem, inv_big_a), a)
        keys.append((_derive_key(group, i, shared0), _derive_key(group, i, shared1)))
    return keys


def random_receive(
    chan: Channel,
    choices: Sequence[int],
    group: ModpGroup = DEFAULT_GROUP,
    randbelow=None,
) -> list[bytes]:
    """Receiver side of random OTs; returns ``k_{c_i}`` per OT."""
    choices = [int(c) for c in choices]
    if any(c not in (0, 1) for c in choices):
        raise CryptoError("base-OT choices must be bits")
    big_a = group.decode(chan.recv())

    exponents = []
    parts = []
    for c in choices:
        b = group.sample_exponent(randbelow)
        exponents.append(b)
        elem = group.gpow(b)
        if c == 1:
            elem = group.mul(elem, big_a)
        parts.append(group.encode(elem))
    chan.send(b"".join(parts))

    return [
        _derive_key(group, i, group.power(big_a, b)) for i, b in enumerate(exponents)
    ]


def send(
    chan: Channel,
    message_pairs: Sequence[tuple[bytes, bytes]],
    group: ModpGroup = DEFAULT_GROUP,
    randbelow=None,
) -> None:
    """Chosen-message 1-out-of-2 OT sender for fixed-length messages."""
    if not message_pairs:
        raise CryptoError("no messages to send")
    length = len(message_pairs[0][0])
    for m0, m1 in message_pairs:
        if len(m0) != length or len(m1) != length:
            raise CryptoError("all OT messages must share one length")
    keys = random_send(chan, len(message_pairs), group, randbelow)
    payload = bytearray()
    for i, ((m0, m1), (k0, k1)) in enumerate(zip(message_pairs, keys)):
        pad0 = sha256_ro.hash_bytes(k0, length, domain=_DOMAIN_BASEOT + 1)
        pad1 = sha256_ro.hash_bytes(k1, length, domain=_DOMAIN_BASEOT + 1)
        payload += xor_bytes(m0, pad0)
        payload += xor_bytes(m1, pad1)
    chan.send(bytes(payload))


def receive(
    chan: Channel,
    choices: Sequence[int],
    length: int,
    group: ModpGroup = DEFAULT_GROUP,
    randbelow=None,
) -> list[bytes]:
    """Chosen-message 1-out-of-2 OT receiver; returns ``m_{c_i}`` per OT."""
    keys = random_receive(chan, choices, group, randbelow)
    blob = chan.recv()
    if len(blob) != 2 * length * len(choices):
        raise CryptoError("unexpected OT ciphertext size")
    out = []
    for i, (c, key) in enumerate(zip(choices, keys)):
        offset = (2 * i + int(c)) * length
        pad = sha256_ro.hash_bytes(key, length, domain=_DOMAIN_BASEOT + 1)
        out.append(xor_bytes(blob[offset : offset + length], pad))
    return out
