"""Fast random-oracle backend: the SipHash oracle, engineered for parallelism.

:data:`fast_ro` computes the **same function** as
:data:`repro.crypto.hash_ro.siphash_ro` — every output word is bit-for-bit
``SipHash-2-4(FIXED_KEY, row || domain<<32 | counter)`` — so the two
backends are interchangeable mid-protocol and produce byte-identical
shares and transcripts (pinned by ``tests/test_exec_process.py``).  What
changes is the execution profile, which is what the parallel executors
need:

* **Shared-prefix absorption.**  ``prf_expand`` appends a distinct
  counter word per output word and re-hashes the whole row each time;
  here the row prefix is absorbed once and only the counter/finalization
  stage runs per output word — ~2x fewer SipRounds at the triplet
  workload's widths (W=16 for o=64 at 16 bits).
* **In-place rounds.**  The round function runs in six preallocated
  state/scratch buffers instead of allocating ~14 temporaries per round,
  which keeps the numpy glue (the GIL-holding part) short.
* **Row chunking.**  Requests are processed in bounded row blocks, so a
  huge ``pads()`` call becomes a sequence of medium-sized kernel calls
  between which the GIL can rotate to other shard threads, and scratch
  memory stays flat.
* **Native kernel hook.**  If a C compiler is available (or a prebuilt
  shared object is supplied via ``ABNN2_RO_KERNEL``), a tiny embedded
  SipHash kernel is compiled once per machine and invoked through
  ``ctypes`` — foreign calls release the GIL for their entire duration,
  which is what lets *thread* executors overlap hashing for real.  The
  kernel computes the identical function; when compilation fails or
  ``ABNN2_RO_NATIVE=0`` is set, the pure-numpy path above is used and
  nothing else changes.

The backend registry (:func:`repro.crypto.hash_ro.get_ro`) exposes this
module as ``"fast"``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading

import numpy as np

from repro.crypto.hash_ro import RandomOracle
from repro.crypto.siphash import FIXED_KEY

_U64 = np.uint64

#: Soft cap on (rows * out_words) per internal block: bounds scratch to a
#: few MiB and keeps individual GIL-holding numpy ops short.
_ROW_BLOCK_WORDS = 1 << 19

_V0 = _U64(0x736F6D6570736575)
_V1 = _U64(0x646F72616E646F6D)
_V2 = _U64(0x6C7967656E657261)
_V3 = _U64(0x7465646279746573)


# --------------------------------------------------------------------- #
# native kernel (optional)
# --------------------------------------------------------------------- #
_KERNEL_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>

#define ROTL(x, b) (uint64_t)(((x) << (b)) | ((x) >> (64 - (b))))
#define SIPROUND do { \
    v0 += v1; v1 = ROTL(v1, 13); v1 ^= v0; v0 = ROTL(v0, 32); \
    v2 += v3; v3 = ROTL(v3, 16); v3 ^= v2; \
    v0 += v3; v3 = ROTL(v3, 21); v3 ^= v0; \
    v2 += v1; v1 = ROTL(v1, 17); v1 ^= v2; v2 = ROTL(v2, 32); \
  } while (0)

void siphash24_expand(const uint64_t *rows, size_t n_rows, size_t words,
                      uint64_t *out, size_t out_words,
                      uint64_t domain, uint64_t k0, uint64_t k1) {
    uint64_t final = (uint64_t)((8 * (words + 1)) % 256) << 56;
    for (size_t r = 0; r < n_rows; r++) {
        uint64_t p0 = 0x736F6D6570736575ULL ^ k0;
        uint64_t p1 = 0x646F72616E646F6DULL ^ k1;
        uint64_t p2 = 0x6C7967656E657261ULL ^ k0;
        uint64_t p3 = 0x7465646279746573ULL ^ k1;
        const uint64_t *row = rows + r * words;
        for (size_t i = 0; i < words; i++) {
            uint64_t m = row[i];
            uint64_t v0 = p0, v1 = p1, v2 = p2, v3 = p3;
            v3 ^= m; SIPROUND; SIPROUND; v0 ^= m;
            p0 = v0; p1 = v1; p2 = v2; p3 = v3;
        }
        for (size_t j = 0; j < out_words; j++) {
            uint64_t c = (uint64_t)j | (domain << 32);
            uint64_t v0 = p0, v1 = p1, v2 = p2, v3 = p3;
            v3 ^= c; SIPROUND; SIPROUND; v0 ^= c;
            v3 ^= final; SIPROUND; SIPROUND; v0 ^= final;
            v2 ^= 0xFF;
            SIPROUND; SIPROUND; SIPROUND; SIPROUND;
            out[r * out_words + j] = v0 ^ v1 ^ v2 ^ v3;
        }
    }
}
"""

_kernel_lock = threading.Lock()
_kernel: "ctypes.CDLL | None | bool" = None  # None = not probed, False = unusable


def _compile_kernel() -> str | None:
    """Build the embedded kernel into a cached .so; returns its path."""
    tag = hashlib.sha256(_KERNEL_SOURCE.encode()).hexdigest()[:16]
    so_path = os.path.join(tempfile.gettempdir(), f"abnn2-sipkern-{tag}.so")
    if os.path.exists(so_path):
        return so_path
    src_path = so_path[:-3] + ".c"
    tmp_so = f"{so_path}.{os.getpid()}.tmp"
    try:
        with open(src_path, "w") as fh:
            fh.write(_KERNEL_SOURCE)
        for cc in ("cc", "gcc", "clang"):
            try:
                proc = subprocess.run(
                    [cc, "-O3", "-shared", "-fPIC", "-o", tmp_so, src_path],
                    capture_output=True, timeout=60.0,
                )
            except (OSError, subprocess.TimeoutExpired):
                continue
            if proc.returncode == 0:
                os.replace(tmp_so, so_path)  # atomic vs concurrent builders
                return so_path
    except OSError:
        pass
    finally:
        if os.path.exists(tmp_so):
            try:
                os.remove(tmp_so)
            except OSError:
                pass
    return None


def _load_kernel() -> "ctypes.CDLL | bool":
    """Probe for the native kernel once per process (thread-safe)."""
    global _kernel
    with _kernel_lock:
        if _kernel is not None:
            return _kernel
        if os.environ.get("ABNN2_RO_NATIVE", "1") == "0":
            _kernel = False
            return _kernel
        path = os.environ.get("ABNN2_RO_KERNEL") or _compile_kernel()
        lib: "ctypes.CDLL | bool" = False
        if path:
            try:
                lib = ctypes.CDLL(path)
                lib.siphash24_expand.argtypes = [
                    ctypes.c_void_p, ctypes.c_size_t, ctypes.c_size_t,
                    ctypes.c_void_p, ctypes.c_size_t,
                    ctypes.c_uint64, ctypes.c_uint64, ctypes.c_uint64,
                ]
                lib.siphash24_expand.restype = None
            except OSError:
                lib = False
        _kernel = lib
        return _kernel


def kernel_active() -> bool:
    """Whether the compiled GIL-releasing kernel is in use."""
    return bool(_load_kernel())


# --------------------------------------------------------------------- #
# pure-numpy fallback: shared-prefix absorption, in-place rounds
# --------------------------------------------------------------------- #
def _rotl_io(v: np.ndarray, bits: int, t: np.ndarray) -> None:
    np.left_shift(v, _U64(bits), out=t)
    v >>= _U64(64 - bits)
    v |= t


def _sipround_io(v0, v1, v2, v3, t) -> None:
    v0 += v1
    _rotl_io(v1, 13, t)
    v1 ^= v0
    _rotl_io(v0, 32, t)
    v2 += v3
    _rotl_io(v3, 16, t)
    v3 ^= v2
    v0 += v3
    _rotl_io(v3, 21, t)
    v3 ^= v0
    v2 += v1
    _rotl_io(v1, 17, t)
    v1 ^= v2
    _rotl_io(v2, 32, t)


def _numpy_expand(flat: np.ndarray, out_words: int, domain: int) -> np.ndarray:
    """(R, words) rows -> (R, out_words), identical to siphash.prf_expand."""
    n_rows, words = flat.shape
    k0, k1 = _U64(FIXED_KEY[0]), _U64(FIXED_KEY[1])
    counters = np.arange(out_words, dtype=_U64) | (_U64(domain) << _U64(32))
    final = _U64((8 * (words + 1)) % 256 << 56)
    shape = (n_rows, out_words)
    v0 = np.empty(n_rows, dtype=_U64)
    v1 = np.empty(n_rows, dtype=_U64)
    v2 = np.empty(n_rows, dtype=_U64)
    v3 = np.empty(n_rows, dtype=_U64)
    v0[:] = _V0 ^ k0
    v1[:] = _V1 ^ k1
    v2[:] = _V2 ^ k0
    v3[:] = _V3 ^ k1
    t = np.empty(n_rows, dtype=_U64)
    with np.errstate(over="ignore"):
        # Absorb the row prefix once; prf_expand redoes it per output word.
        for i in range(words):
            m = flat[:, i]
            v3 ^= m
            _sipround_io(v0, v1, v2, v3, t)
            _sipround_io(v0, v1, v2, v3, t)
            v0 ^= m
        # Broadcast the prefix state across the counter axis, then run the
        # per-output-word tail (counter absorb + finalization) in place.
        w0 = np.repeat(v0[:, None], out_words, axis=1)
        w1 = np.repeat(v1[:, None], out_words, axis=1)
        w2 = np.repeat(v2[:, None], out_words, axis=1)
        w3 = v3[:, None] ^ counters
        ts = np.empty(shape, dtype=_U64)
        _sipround_io(w0, w1, w2, w3, ts)
        _sipround_io(w0, w1, w2, w3, ts)
        w0 ^= counters
        w3 ^= final
        _sipround_io(w0, w1, w2, w3, ts)
        _sipround_io(w0, w1, w2, w3, ts)
        w0 ^= final
        w2 ^= _U64(0xFF)
        for _ in range(4):
            _sipround_io(w0, w1, w2, w3, ts)
        w0 ^= w1
        w0 ^= w2
        w0 ^= w3
        return w0


# --------------------------------------------------------------------- #
# the backend
# --------------------------------------------------------------------- #
def prf_expand_fast(
    message_words: np.ndarray, out_words: int, domain: int = 0
) -> np.ndarray:
    """Drop-in :func:`repro.crypto.siphash.prf_expand` (fixed key only).

    Work is processed in bounded row blocks; each block is one native
    kernel call (GIL released) or one in-place numpy pass.
    """
    msg = np.atleast_2d(np.asarray(message_words, dtype=_U64))
    lead = msg.shape[:-1]
    words = msg.shape[-1]
    flat = np.ascontiguousarray(msg.reshape(-1, words))
    n_rows = flat.shape[0]
    out = np.empty((n_rows, out_words), dtype=_U64)
    block = max(1, _ROW_BLOCK_WORDS // max(1, out_words))
    lib = _load_kernel()
    for lo in range(0, n_rows, block):
        hi = min(n_rows, lo + block)
        if lib:
            rows = flat[lo:hi]
            lib.siphash24_expand(
                rows.ctypes.data, hi - lo, words,
                out[lo:hi].ctypes.data, out_words,
                domain, FIXED_KEY[0], FIXED_KEY[1],
            )
        else:
            out[lo:hi] = _numpy_expand(flat[lo:hi], out_words, domain)
    return out.reshape(lead + (out_words,))


def _fast_mask(rows: np.ndarray, out_words: int, domain: int) -> np.ndarray:
    return prf_expand_fast(rows, out_words, domain=domain)


#: Same oracle function as :data:`repro.crypto.hash_ro.siphash_ro`, fast
#: execution profile (chunked, in-place, optional GIL-releasing kernel).
fast_ro = RandomOracle("siphash24-fast", _fast_mask)
