"""Pseudo-random generator: expand a short seed into long pseudorandom data.

IKNP OT extension needs each 128-bit base-OT secret expanded into an
``m``-bit column.  We use numpy's Philox counter-based generator keyed by
the seed — a cryptographically structured ARX generator whose keying makes
independent seeds yield independent streams, which is the property the
protocol relies on.  (As with the SipHash oracle, DESIGN.md records this
as the performance substitution for an AES-CTR PRG.)

:class:`BatchPrg` holds all kappa (or 2*kappa) column seeds of one
OT-extension session in a single vectorized multi-key Philox4x64-10
implementation and emits the whole word-packed column block in one call.
Its byte streams are bit-for-bit identical to a ``list[Prg]`` driven
column by column: ``Generator.integers(0, 256, dtype=uint8)`` over a
power-of-two range consumes the Philox output stream as little-endian
bytes through a 32-bit buffer, and :class:`BatchPrg` replays exactly that
consumption pattern (including the cached high half-word that survives
between draws).  The transcript cross-check tests pin this equivalence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CryptoError

_U64 = np.uint64
_MASK32 = _U64(0xFFFFFFFF)
_MASK64 = 0xFFFFFFFFFFFFFFFF

# Philox4x64 round multipliers and Weyl key increments (Random123 / numpy).
_PHILOX_M0 = _U64(0xD2E7470EE14C6C93)
_PHILOX_M1 = _U64(0xCA5A826395121157)
_PHILOX_W0 = _U64(0x9E3779B97F4A7C15)
_PHILOX_W1 = _U64(0xBB67AE8584CAA73B)
_PHILOX_ROUNDS = 10

SEED_BYTES = 16


class Prg:
    """Deterministic stream expansion from a 128-bit seed."""

    def __init__(self, seed_bytes: bytes) -> None:
        if len(seed_bytes) != SEED_BYTES:
            raise CryptoError(f"PRG seed must be {SEED_BYTES} bytes, got {len(seed_bytes)}")
        key = int.from_bytes(seed_bytes, "little")
        self._gen = np.random.Generator(np.random.Philox(key=key))

    def bits(self, count: int) -> np.ndarray:
        """``count`` pseudorandom bits as a uint8 0/1 array."""
        if count < 0:
            raise CryptoError("bit count must be non-negative")
        nbytes = (count + 7) // 8
        raw = self._gen.integers(0, 256, size=nbytes, dtype=np.uint8)
        # ``count=`` sizes the output exactly — no oversized allocation
        # that a trailing slice would then have to copy or pin alive.
        return np.unpackbits(raw, bitorder="little", count=count)

    def packed_bits(self, count: int) -> np.ndarray:
        """``count`` pseudorandom bits as ``ceil(count/64)`` uint64 words.

        Consumes exactly the bytes :meth:`bits` would (so the two calls
        are interchangeable stream-wise); bits at positions >= ``count``
        in the last word are zero.
        """
        if count < 0:
            raise CryptoError("bit count must be non-negative")
        nbytes = (count + 7) // 8
        raw = self._gen.integers(0, 256, size=nbytes, dtype=np.uint8)
        words = (count + 63) // 64
        buf = np.zeros(words * 8, dtype=np.uint8)
        buf[:nbytes] = raw
        out = buf.view(np.uint64)
        if count % 64:
            out[-1] &= _U64((1 << (count % 64)) - 1)
        return out

    def words(self, count: int) -> np.ndarray:
        """``count`` pseudorandom uint64 words."""
        if count < 0:
            raise CryptoError("word count must be non-negative")
        return self._gen.integers(0, 1 << 64, size=count, dtype=np.uint64)

    def bytes(self, count: int) -> bytes:
        return self._gen.integers(0, 256, size=count, dtype=np.uint8).tobytes()


def expand_to_bits(seed_bytes: bytes, count: int) -> np.ndarray:
    """One-shot helper: seed -> ``count`` bits."""
    return Prg(seed_bytes).bits(count)


# --------------------------------------------------------------------- #
# vectorized multi-key Philox
# --------------------------------------------------------------------- #
_SH32 = _U64(32)

#: Soft cap on Philox counter blocks generated per internal step: bounds
#: the round-state scratch of one :func:`_philox_blocks` call (six
#: ``(K, B)`` buffers) and keeps individual GIL-holding numpy ops short
#: enough that shard threads can interleave.  4096 blocks at the OT
#: sessions' K=256 keys is ~50 MiB of scratch.
_PHILOX_BLOCK_STEP = 4096


def _mulhi_into(
    a_lo: np.uint64,
    a_hi: np.uint64,
    b: np.ndarray,
    out: np.ndarray,
    t: np.ndarray,
    s: np.ndarray,
    u: np.ndarray,
) -> None:
    """High word of the 128-bit product ``(a_hi:a_lo) * b``, into ``out``.

    Schoolbook 32-bit limbs with exact carry propagation; ``t``/``s``/``u``
    are caller-owned scratch buffers (the Philox loop reuses them across
    all twenty multiplies so the round function never allocates).
    """
    np.bitwise_and(b, _MASK32, out=t)  # b_lo
    np.multiply(a_lo, t, out=s)
    s >>= _SH32
    np.multiply(a_hi, t, out=t)
    t += s  # t = a_hi*b_lo + ((a_lo*b_lo) >> 32), the middle word
    np.right_shift(b, _SH32, out=s)  # b_hi
    np.multiply(a_lo, s, out=out)
    np.multiply(a_hi, s, out=s)  # s = a_hi*b_hi
    np.bitwise_and(t, _MASK32, out=u)
    out += u  # a_lo*b_hi + (t & m32): cannot overflow 64 bits
    out >>= _SH32
    t >>= _SH32
    out += t
    out += s


_M0_LO, _M0_HI = _PHILOX_M0 & _MASK32, _PHILOX_M0 >> _SH32
_M1_LO, _M1_HI = _PHILOX_M1 & _MASK32, _PHILOX_M1 >> _SH32


def _philox_blocks(key0: np.ndarray, key1: np.ndarray, counters: np.ndarray) -> np.ndarray:
    """Philox4x64-10 blocks for ``K`` keys x ``B`` counter values.

    ``key0``/``key1`` are ``(K,)`` uint64; ``counters`` is ``(B,)``
    uint64 (numpy increments its counter *before* generating, so block
    ``b`` of a fresh stream uses counter ``b + 1``).  Returns
    ``(K, B * 4)``: per key, the flat uint64 output stream.

    All round arithmetic runs in six rotating ``(K, B)`` state buffers
    plus three scratch buffers — the low product lands in-place over the
    consumed counter lane and the keys stay ``(K, 1)`` broadcasts, so
    the ten-round loop performs zero allocations.
    """
    k = key0.shape[0]
    b = counters.shape[0]
    shape = (k, b)
    k0 = key0[:, None].copy()
    k1 = key1[:, None].copy()

    # Rounds 0-1 on the algebraically low-rank state.  Round 0 sees
    # x = (counter, 0, 0, 0), so its products depend on the counter
    # alone (shape (B,)); round 1's first lane is the bare key (shape
    # (K, 1)).  Only its second multiply touches a full (K, B) array.
    def _mulhi_small(a_lo, a_hi, arr):
        b_lo, b_hi = arr & _MASK32, arr >> _SH32
        t_mid = a_hi * b_lo + ((a_lo * b_lo) >> _SH32)
        s_full = a_lo * b_hi + (t_mid & _MASK32)
        return a_hi * b_hi + (t_mid >> _SH32) + (s_full >> _SH32)

    h0c = _mulhi_small(_M0_LO, _M0_HI, counters)  # (B,)
    lo0c = _PHILOX_M0 * counters  # (B,)
    # after round 0: x = (k0, 0, h0c ^ k1, lo0c)
    k0 += _PHILOX_W0
    k1 += _PHILOX_W1
    h0k = _mulhi_small(_M0_LO, _M0_HI, key0)[:, None]  # (K, 1)
    lo0k = (_PHILOX_M0 * key0)[:, None]  # (K, 1)
    x2r1 = np.bitwise_xor(h0c[None, :], key1[:, None])  # lane 2 after round 0
    x0 = np.empty(shape, dtype=_U64)
    x1 = np.empty(shape, dtype=_U64)
    x2 = np.empty(shape, dtype=_U64)
    x3 = np.empty(shape, dtype=_U64)
    h0 = np.empty(shape, dtype=_U64)
    h1 = np.empty(shape, dtype=_U64)
    t = np.empty(shape, dtype=_U64)
    s = np.empty(shape, dtype=_U64)
    u = np.empty(shape, dtype=_U64)
    _mulhi_into(_M1_LO, _M1_HI, x2r1, x0, t, s, u)
    x0 ^= k0  # x1 after round 0 is zero
    np.multiply(_PHILOX_M1, x2r1, out=x1)
    np.bitwise_xor(h0k, lo0c[None, :], out=x2)
    x2 ^= k1
    x3[:] = lo0k
    for _ in range(2, _PHILOX_ROUNDS):
        k0 += _PHILOX_W0
        k1 += _PHILOX_W1
        _mulhi_into(_M0_LO, _M0_HI, x0, h0, t, s, u)
        _mulhi_into(_M1_LO, _M1_HI, x2, h1, t, s, u)
        np.multiply(_PHILOX_M0, x0, out=x0)  # x0 becomes lo0 (= next x3)
        np.multiply(_PHILOX_M1, x2, out=x2)  # x2 becomes lo1 (= next x1)
        h1 ^= x1
        h1 ^= k0  # h1 becomes next x0
        h0 ^= x3
        h0 ^= k1  # h0 becomes next x2
        x0, x1, x2, x3, h0, h1 = h1, x2, h0, x0, x1, x3
    return np.stack([x0, x1, x2, x3], axis=-1).reshape(k, b * 4)


def _philox_blocks_chunked(
    key0: np.ndarray, key1: np.ndarray, counters: np.ndarray
) -> np.ndarray:
    """:func:`_philox_blocks` in bounded counter steps (identical output).

    Counter-mode output depends only on the counter values, so splitting
    one big request into steps and writing each step's words into the
    preallocated result is bit-identical to the single-shot call while
    keeping peak scratch flat and yielding the GIL between steps.
    """
    b = counters.shape[0]
    if b <= _PHILOX_BLOCK_STEP:
        return _philox_blocks(key0, key1, counters)
    out = np.empty((key0.shape[0], b * 4), dtype=_U64)
    for lo in range(0, b, _PHILOX_BLOCK_STEP):
        hi = min(b, lo + _PHILOX_BLOCK_STEP)
        out[:, 4 * lo : 4 * hi] = _philox_blocks(key0, key1, counters[lo:hi])
    return out


class BatchPrg:
    """All column PRGs of an OT-extension session, expanded in one shot.

    Holds ``K`` 128-bit seeds; :meth:`packed_bits` returns the whole
    ``(K, ceil(count/64))`` word-packed column block.  Stream ``j`` is
    byte-identical to ``Prg(seeds[j])`` driven with the same sequence of
    ``bits``/``packed_bits`` calls, so sessions can swap one for the
    other mid-stream (the reference engines rely on this).
    """

    def __init__(self, seeds: Sequence[bytes]) -> None:
        seeds = [bytes(s) for s in seeds]
        if not seeds:
            raise CryptoError("BatchPrg needs at least one seed")
        for s in seeds:
            if len(s) != SEED_BYTES:
                raise CryptoError(f"PRG seed must be {SEED_BYTES} bytes, got {len(s)}")
        self._seeds = tuple(seeds)
        keys = [int.from_bytes(s, "little") for s in seeds]
        self._key0 = np.array([k & _MASK64 for k in keys], dtype=_U64)
        self._key1 = np.array([k >> 64 for k in keys], dtype=_U64)
        self._drawn64 = 0  # uint64 outputs consumed per stream
        self._cached_hi: np.ndarray | None = None  # pending high half-words

    @property
    def seeds(self) -> tuple[bytes, ...]:
        return self._seeds

    @property
    def n_streams(self) -> int:
        return len(self._seeds)

    def packed_bits(self, count: int) -> np.ndarray:
        """``count`` bits per stream as ``(K, ceil(count/64))`` uint64 words.

        Every stream consumes ``ceil(count/8)`` bytes, exactly like
        ``Prg.bits(count)``; tail bits beyond ``count`` are zero.
        """
        if count < 0:
            raise CryptoError("bit count must be non-negative")
        k = self.n_streams
        words = (count + 63) // 64
        if count == 0:
            return np.zeros((k, 0), dtype=_U64)
        nbytes = (count + 7) // 8
        n32 = (nbytes + 3) // 4
        fresh32 = n32 - (1 if self._cached_hi is not None else 0)
        n64 = (fresh32 + 1) // 2
        if (
            self._cached_hi is None
            and count % 64 == 0
            and self._drawn64 % 4 == 0
            and n64 % 4 == 0
        ):
            # Aligned fast path (every power-of-two OT batch): the fresh
            # Philox words ARE the packed output — no byte shuffling.
            counters = np.arange(
                self._drawn64 // 4 + 1, (self._drawn64 + n64) // 4 + 1, dtype=_U64
            )
            out = _philox_blocks_chunked(self._key0, self._key1, counters)
            self._drawn64 += n64
            return out
        buf = np.zeros((k, words * 8), dtype=np.uint8)
        pos = 0
        if self._cached_hi is not None:
            take = min(4, nbytes)
            cached_bytes = self._cached_hi.astype("<u4").view(np.uint8).reshape(k, 4)
            buf[:, :take] = cached_bytes[:, :take]
            pos = take
            self._cached_hi = None
        if n64:
            b0 = self._drawn64 // 4
            b1 = (self._drawn64 + n64 - 1) // 4
            counters = np.arange(b0 + 1, b1 + 2, dtype=_U64)
            flat = _philox_blocks_chunked(self._key0, self._key1, counters)
            off = self._drawn64 - 4 * b0
            u64s = np.ascontiguousarray(flat[:, off : off + n64])
            need = nbytes - pos
            buf[:, pos:nbytes] = u64s.view(np.uint8).reshape(k, n64 * 8)[:, :need]
            self._drawn64 += n64
            if fresh32 % 2:
                self._cached_hi = u64s[:, -1] >> _U64(32)
        out = buf.view(_U64)
        if count % 64:
            out[:, -1] &= _U64((1 << (count % 64)) - 1)
        return out
