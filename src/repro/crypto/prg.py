"""Pseudo-random generator: expand a short seed into long pseudorandom data.

IKNP OT extension needs each 128-bit base-OT secret expanded into an
``m``-bit column.  We use numpy's Philox counter-based generator keyed by
the seed — a cryptographically structured ARX generator whose keying makes
independent seeds yield independent streams, which is the property the
protocol relies on.  (As with the SipHash oracle, DESIGN.md records this
as the performance substitution for an AES-CTR PRG.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import CryptoError


class Prg:
    """Deterministic stream expansion from a 128-bit seed."""

    def __init__(self, seed_bytes: bytes) -> None:
        if len(seed_bytes) != 16:
            raise CryptoError(f"PRG seed must be 16 bytes, got {len(seed_bytes)}")
        key = int.from_bytes(seed_bytes, "little")
        self._gen = np.random.Generator(np.random.Philox(key=key))

    def bits(self, count: int) -> np.ndarray:
        """``count`` pseudorandom bits as a uint8 0/1 array."""
        if count < 0:
            raise CryptoError("bit count must be non-negative")
        nbytes = (count + 7) // 8
        raw = self._gen.integers(0, 256, size=nbytes, dtype=np.uint8)
        return np.unpackbits(raw, bitorder="little")[:count]

    def words(self, count: int) -> np.ndarray:
        """``count`` pseudorandom uint64 words."""
        if count < 0:
            raise CryptoError("word count must be non-negative")
        return self._gen.integers(0, 1 << 64, size=count, dtype=np.uint64)

    def bytes(self, count: int) -> bytes:
        return self._gen.integers(0, 256, size=count, dtype=np.uint8).tobytes()


def expand_to_bits(seed_bytes: bytes, count: int) -> np.ndarray:
    """One-shot helper: seed -> ``count`` bits."""
    return Prg(seed_bytes).bits(count)
