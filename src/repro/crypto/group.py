"""Prime-order-ish multiplicative groups for the base OT.

The base OT (:mod:`repro.crypto.baseot`) runs Chou–Orlandi style key
agreement in a classic MODP group.  We ship the RFC 3526 1536-bit and
2048-bit groups (safe primes, generator 2) plus a small 256-bit safe prime
for fast unit tests — the small group is clearly labelled *insecure* and
never selected by default.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.errors import CryptoError

# RFC 3526, group 5 (1536-bit MODP).
_P_1536 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)

# RFC 3526, group 14 (2048-bit MODP).
_P_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)

# A 256-bit safe prime (p = 2q + 1, p = 7 mod 8, so 2 generates the
# order-q subgroup) for *tests only*.
_P_256_TEST = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF72EF


@dataclass(frozen=True)
class ModpGroup:
    """A multiplicative group Z_p^* with a fixed generator.

    For safe primes with generator ``g = 2`` the subgroup has large prime
    order ``q = (p - 1) / 2``; exponents are sampled below ``q``.
    """

    name: str
    p: int
    g: int
    secure: bool

    @property
    def order(self) -> int:
        return (self.p - 1) // 2

    @property
    def element_bytes(self) -> int:
        return (self.p.bit_length() + 7) // 8

    def sample_exponent(self, randbelow=None) -> int:
        """A random nonzero exponent.

        Uses the standard short-exponent optimization for large groups:
        in a safe-prime group, 2*kappa-bit exponents are believed as hard
        to recover as full-width ones (short-exponent DLOG), and they cut
        the base-OT exponentiation cost by ~6x at 1536 bits.
        """
        draw = randbelow or secrets.randbelow
        bound = min(self.order, 1 << 256)
        value = 0
        while value == 0:
            value = draw(bound)
        return value

    def power(self, base: int, exponent: int) -> int:
        return pow(base, exponent, self.p)

    def gpow(self, exponent: int) -> int:
        return pow(self.g, exponent, self.p)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def invert(self, a: int) -> int:
        if a % self.p == 0:
            raise CryptoError("cannot invert zero in Z_p^*")
        return pow(a, self.p - 2, self.p)

    def encode(self, element: int) -> bytes:
        return element.to_bytes(self.element_bytes, "little")

    def decode(self, data: bytes) -> int:
        element = int.from_bytes(data, "little")
        if not 1 <= element < self.p:
            raise CryptoError("group element out of range")
        return element


MODP_1536 = ModpGroup("modp-1536", _P_1536, 2, secure=True)
MODP_2048 = ModpGroup("modp-2048", _P_2048, 2, secure=True)
#: 256-bit group: fast, but offers no real security — tests only.
MODP_TEST = ModpGroup("modp-256-test", _P_256_TEST, 2, secure=False)

DEFAULT_GROUP = MODP_1536
