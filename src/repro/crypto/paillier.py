"""Paillier additively homomorphic encryption (MiniONN's LHE substrate).

MiniONN generates its offline dot-product triplets with SIMD-batched
leveled HE; we reproduce the shape with textbook Paillier plus *plaintext
packing*: several batch slots share one ciphertext, separated by enough
headroom bits that homomorphic accumulation never carries across slots
(scalar-times-ciphertext multiplies every slot by the same scalar, which
is exactly the access pattern of ``W @ R`` row accumulation).

Key sizes are configurable because big-integer exponentiation is the
whole cost: 2048-bit keys are realistic, the 512/256-bit options exist so
tests and bounded benchmark runs finish in Python (flagged insecure;
benchmark reports also quote the analytic traffic at 2048 bits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import CryptoError
from repro.utils.rng import make_rng, randbelow_from_rng

_SMALL_PRIMES = (3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67)


def _is_probable_prime(n: int, rng: np.random.Generator, rounds: int = 40) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + randbelow_from_rng(rng, n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: np.random.Generator) -> int:
    if bits < 8:
        raise CryptoError("prime width too small")
    while True:
        candidate = randbelow_from_rng(rng, 1 << bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class PaillierPublicKey:
    n: int
    key_bits: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def ciphertext_bytes(self) -> int:
        """Wire size of one ciphertext (an element of Z_{n^2})."""
        return (2 * self.key_bits + 7) // 8

    @property
    def plaintext_bits(self) -> int:
        """Usable message width (conservatively one bit under |n|)."""
        return self.n.bit_length() - 1


@dataclass(frozen=True)
class PaillierSecretKey:
    public: PaillierPublicKey
    lam: int  # lcm(p-1, q-1)
    mu: int  # (L(g^lam mod n^2))^-1 mod n


def keygen(key_bits: int = 2048, seed: int | None = None) -> tuple[PaillierPublicKey, PaillierSecretKey]:
    """Generate a key pair.  ``key_bits`` is |n|; < 2048 is insecure and
    intended only for tests/bounded benchmark runs."""
    rng = make_rng(seed)
    half = key_bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(key_bits - half, rng)
        if p != q and (p * q).bit_length() == key_bits:
            break
    n = p * q
    public = PaillierPublicKey(n=n, key_bits=key_bits)
    lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
    # g = n + 1, so L(g^lam mod n^2) = lam mod n and mu = lam^-1 mod n.
    mu = pow(lam, -1, n)
    return public, PaillierSecretKey(public=public, lam=lam, mu=mu)


def encrypt(pk: PaillierPublicKey, message: int, rng: np.random.Generator) -> int:
    """Enc(m) = (1 + m*n) * r^n mod n^2 (g = n + 1 variant)."""
    if not 0 <= message < pk.n:
        raise CryptoError("plaintext out of range")
    n2 = pk.n_squared
    while True:
        r = randbelow_from_rng(rng, pk.n)
        if r and math.gcd(r, pk.n) == 1:
            break
    return ((1 + message * pk.n) % n2) * pow(r, pk.n, n2) % n2


def decrypt(sk: PaillierSecretKey, ciphertext: int) -> int:
    n = sk.public.n
    n2 = sk.public.n_squared
    if not 0 <= ciphertext < n2:
        raise CryptoError("ciphertext out of range")
    x = pow(ciphertext, sk.lam, n2)
    l_value = (x - 1) // n
    return l_value * sk.mu % n


def add(pk: PaillierPublicKey, c1: int, c2: int) -> int:
    """Enc(m1 + m2) from Enc(m1), Enc(m2)."""
    return c1 * c2 % pk.n_squared

def scalar_mul(pk: PaillierPublicKey, c: int, k: int) -> int:
    """Enc(k * m) from Enc(m); ``k`` must be non-negative."""
    if k < 0:
        raise CryptoError("scalar must be non-negative (offset-encode signed values)")
    return pow(c, k, pk.n_squared)


# --------------------------------------------------------------------- #
# slot packing (SIMD emulation)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SlotPacking:
    """Fixed-width slot layout inside one Paillier plaintext.

    ``slot_bits`` must cover the largest accumulated slot value:
    ``value_bits + scalar_bits + ceil(log2(n_terms))`` for a W @ R row
    accumulation.
    """

    slot_bits: int
    slots: int

    @classmethod
    def for_accumulation(
        cls,
        pk: PaillierPublicKey,
        value_bits: int,
        scalar_bits: int,
        n_terms: int,
    ) -> "SlotPacking":
        slot_bits = value_bits + scalar_bits + max(1, n_terms - 1).bit_length() + 1
        slots = pk.plaintext_bits // slot_bits
        if slots < 1:
            raise CryptoError(
                f"slot of {slot_bits} bits does not fit a {pk.plaintext_bits}-bit plaintext"
            )
        return cls(slot_bits=slot_bits, slots=slots)

    def pack(self, values) -> int:
        """Pack a 1-D sequence of non-negative ints into one plaintext."""
        vals = [int(v) for v in values]
        if len(vals) > self.slots:
            raise CryptoError(f"cannot pack {len(vals)} values into {self.slots} slots")
        total = 0
        for idx, v in enumerate(vals):
            if v < 0 or v >> self.slot_bits:
                raise CryptoError("value exceeds slot width")
            total |= v << (idx * self.slot_bits)
        return total

    def unpack(self, packed: int, count: int) -> list[int]:
        """Extract ``count`` slot values as python ints (full slot width)."""
        if count > self.slots:
            raise CryptoError(f"cannot unpack {count} values from {self.slots} slots")
        mask = (1 << self.slot_bits) - 1
        return [(packed >> (i * self.slot_bits)) & mask for i in range(count)]
