"""Cryptographic substrates built from scratch for the ABNN2 reproduction.

Layers, bottom to top:

* :mod:`repro.crypto.hash_ro` / :mod:`repro.crypto.siphash` — random-oracle
  backends (reference SHA-256; numpy-vectorized SipHash for bulk masking).
* :mod:`repro.crypto.prg` — seed expansion.
* :mod:`repro.crypto.group` / :mod:`repro.crypto.baseot` — public-key base
  oblivious transfers (Naor–Pinkas style over a MODP group).
* :mod:`repro.crypto.iknp` — IKNP 1-out-of-2 OT extension, plus correlated
  and random OT variants.
* :mod:`repro.crypto.codes` / :mod:`repro.crypto.kk13` — Kolesnikov–Kumaresan
  1-out-of-N OT extension over Walsh–Hadamard codes (the paper's workhorse).
* :mod:`repro.crypto.paillier` — additively homomorphic encryption for the
  MiniONN baseline.
"""

from repro.crypto.hash_ro import RandomOracle, sha256_ro, siphash_ro

__all__ = ["RandomOracle", "sha256_ro", "siphash_ro"]
