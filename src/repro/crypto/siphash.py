"""Numpy-vectorized SipHash-2-4 used as a fixed-key PRF / random oracle.

OT extension hashes *millions* of short blocks; calling ``hashlib`` per
block would dominate the runtime of a pure-Python reproduction.  Practical
OT stacks (incl. ABY, which the paper builds on) solve this with fixed-key
AES-NI; we substitute a fixed-key **SipHash-2-4**, an ARX PRF whose 64-bit
lane structure vectorizes perfectly in numpy: one call processes an entire
``(rows, words)`` uint64 message matrix at once.

The implementation follows the SipHash reference exactly for whole-word
messages (our only use case: messages are already u64-aligned, and the
length byte is folded into the final block).  The scalar path is tested
against known vectors derived from the reference implementation.

Security note, recorded in DESIGN.md: SipHash is a PRF, not a collision-
resistant hash.  For the random-oracle role in IKNP/KK13 masking this is
the same heuristic leap as fixed-key AES; the SHA-256 backend in
:mod:`repro.crypto.hash_ro` is the conservative reference and the two are
interchangeable via configuration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CryptoError

_U64 = np.uint64

# Fixed public key, "expand 32-byte k" style nothing-up-my-sleeve constants.
FIXED_KEY = (0x0706050403020100, 0x0F0E0D0C0B0A0908)


def _rotl(x: np.ndarray, b: int) -> np.ndarray:
    return (x << _U64(b)) | (x >> _U64(64 - b))


def _sipround(v0, v1, v2, v3):
    v0 = v0 + v1
    v1 = _rotl(v1, 13)
    v1 ^= v0
    v0 = _rotl(v0, 32)
    v2 = v2 + v3
    v3 = _rotl(v3, 16)
    v3 ^= v2
    v0 = v0 + v3
    v3 = _rotl(v3, 21)
    v3 ^= v0
    v2 = v2 + v1
    v1 = _rotl(v1, 17)
    v1 ^= v2
    v2 = _rotl(v2, 32)
    return v0, v1, v2, v3


def siphash24(
    message_words: np.ndarray,
    key: tuple[int, int] = FIXED_KEY,
) -> np.ndarray:
    """SipHash-2-4 over whole-u64 messages, vectorized across rows.

    ``message_words`` has shape ``(..., words)``; each row is hashed
    independently and an ``(...,)``-shaped uint64 digest array is returned.
    The standard length byte becomes ``8 * words`` in the final block,
    matching the reference algorithm for messages with no tail bytes.
    """
    msg = np.asarray(message_words, dtype=_U64)
    if msg.ndim == 0:
        raise CryptoError("message must have at least one axis of u64 words")
    words = msg.shape[-1]
    k0 = _U64(key[0])
    k1 = _U64(key[1])

    shape = msg.shape[:-1]
    v0 = np.full(shape, 0x736F6D6570736575, dtype=_U64) ^ k0
    v1 = np.full(shape, 0x646F72616E646F6D, dtype=_U64) ^ k1
    v2 = np.full(shape, 0x6C7967656E657261, dtype=_U64) ^ k0
    v3 = np.full(shape, 0x7465646279746573, dtype=_U64) ^ k1

    with np.errstate(over="ignore"):
        for i in range(words):
            m = msg[..., i]
            v3 = v3 ^ m
            v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
            v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
            v0 = v0 ^ m
        # Final block: all-zero data bytes, length byte in the MSB.
        final = _U64((8 * words % 256) << 56)
        v3 = v3 ^ final
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
        v0 = v0 ^ final
        v2 = v2 ^ _U64(0xFF)
        for _ in range(4):
            v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
        return v0 ^ v1 ^ v2 ^ v3


def prf_expand(
    message_words: np.ndarray,
    out_words: int,
    domain: int = 0,
    key: tuple[int, int] = FIXED_KEY,
) -> np.ndarray:
    """Expand each message row into ``out_words`` uint64 PRF outputs.

    Output word ``j`` of row ``i`` is ``SipHash(key, row_i || domain || j)``;
    appending the counter keeps distinct output positions independent.
    Result shape: ``(..., out_words)``.
    """
    if out_words < 1:
        raise CryptoError(f"out_words must be >= 1, got {out_words}")
    msg = np.atleast_2d(np.asarray(message_words, dtype=_U64))
    lead = msg.shape[:-1]
    words = msg.shape[-1]
    counters = np.arange(out_words, dtype=_U64) | (_U64(domain) << _U64(32))
    # Build (..., out_words, words + 1) blocks: row words then the counter.
    expanded = np.empty(lead + (out_words, words + 1), dtype=_U64)
    expanded[..., :, :words] = msg[..., None, :]
    expanded[..., :, words] = counters
    return siphash24(expanded, key=key)
