"""IKNP 1-out-of-2 OT extension, with chosen-message and correlated variants.

One public-key *setup* of ``kappa`` base OTs bootstraps an unbounded
stream of symmetric-key OTs (Ishai–Kilian–Nissim–Petrank).  Sessions keep
the base-OT PRG streams open, so repeated extension batches over one
channel amortize the setup exactly like production OT stacks.

Roles follow the classic description:

* The **extension sender** (who inputs message pairs) samples a secret
  ``s in {0,1}^kappa`` and plays base-OT *receiver* with choices ``s``.
* The **extension receiver** (who inputs choice bits) plays base-OT
  *sender*, expands both base keys per column into ``m``-bit streams
  ``t^0_j, t^1_j``, keeps ``T = [t^0]``, and transmits
  ``u_j = t^0_j xor t^1_j xor c``.
* The sender reconstructs ``Q`` with rows ``q_i = t_i xor c_i * s`` and
  masks its messages with ``H(i, q_i)`` and ``H(i, q_i xor s)``.

The correlated variant (`Gilboa-style`_) transfers one ring element per
OT: the sender learns a random ``x_i`` and the receiver ``x_i + c_i *
delta_i (mod 2^l)`` — the primitive under SecureML's offline
multiplication triplets and QUOTIENT's ternary products.

.. _Gilboa-style: used for the baselines in :mod:`repro.baselines`.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import baseot
from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.crypto.prg import BatchPrg
from repro.errors import CryptoError, ProtocolError
from repro.net.channel import Channel
from repro.perf.trace import channel_span
from repro.utils.bits import (
    concat_packed_rows,
    pack_bits_to_words,
    pack_ring_words,
    packed_word_count,
    split_packed_rows,
    transpose_packed,
    unpack_ring_words,
)
from repro.utils.ring import Ring
from repro.utils.rng import make_rng, randbelow_from_rng

_U64 = np.uint64
_ALL_ONES = _U64(0xFFFFFFFFFFFFFFFF)

KAPPA = 128
_KAPPA_WORDS = KAPPA // 64

#: Sub-session tags get the top 16 bits of the 64-bit OT-index tweak, so
#: concurrent sharded sessions (see :mod:`repro.exec`) can never collide
#: in the random-oracle tweak space even if they were (mis)configured
#: with identical base-OT keys.  48 bits of per-session OT counter is
#: far beyond any batch this stack will run.
MAX_SESSION_TAG = (1 << 16) - 1
_SESSION_TAG_SHIFT = 48


def _session_base_index(session_tag: int) -> int:
    """Starting ``_ot_index`` for a sub-session tag (0 = the default domain)."""
    tag = int(session_tag)
    if not 0 <= tag <= MAX_SESSION_TAG:
        raise CryptoError(f"session_tag must be in [0, {MAX_SESSION_TAG}], got {tag}")
    return tag << _SESSION_TAG_SHIFT


def _rows_with_index(packed_rows: np.ndarray, start_index: int) -> np.ndarray:
    """Append the global OT index as an extra hash-input word per row."""
    m, width = packed_rows.shape
    out = np.empty((m, width + 1), dtype=_U64)
    out[:, :width] = packed_rows
    out[:, width] = np.arange(m, dtype=_U64) + _U64(start_index)
    return out


def _checked_u_blob(blob, n_cols: int, m: int) -> bytes:
    """Validate the received U-matrix blob before word-level parsing."""
    expected = (n_cols * m + 7) // 8
    if not isinstance(blob, (bytes, bytearray)):
        raise ProtocolError(
            f"OT-extension U matrix must arrive as bytes, got {type(blob).__name__}"
        )
    if len(blob) != expected:
        raise ProtocolError(
            f"OT-extension U matrix for {n_cols}x{m} bits must be "
            f"{expected} bytes, got {len(blob)}"
        )
    return bytes(blob)


class OtExtSender:
    """Extension-sender session (the party that inputs messages)."""

    def __init__(
        self,
        chan: Channel,
        kappa: int = KAPPA,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
        session_tag: int = 0,
    ) -> None:
        if kappa % 64 != 0:
            raise CryptoError("kappa must be a multiple of 64")
        self.chan = chan
        self.kappa = kappa
        self.group = group
        self.ro = ro
        self._rng = make_rng(seed)
        self._s_bits: np.ndarray | None = None
        self._prg: BatchPrg | None = None
        self._ot_index = _session_base_index(session_tag)

    # ------------------------------------------------------------------ #
    def _ensure_setup(self) -> None:
        if self._s_bits is not None:
            return
        s = self._rng.integers(0, 2, size=self.kappa, dtype=np.uint8)
        with channel_span(
            self.chan, "base-ot", kind="iknp", count=self.kappa,
            element_bytes=self.group.element_bytes,
        ):
            keys = baseot.random_receive(
                self.chan, s.tolist(), self.group, randbelow=self._randbelow
            )
        self._s_bits = s
        self._prg = BatchPrg(keys)
        self._s_words = pack_bits_to_words(s)
        # Per-column select mask: all-ones where s_j = 1, zero otherwise.
        self._s_colmask = (s.astype(_U64) * _ALL_ONES)[:, None]

    def _randbelow(self, bound: int) -> int:
        return randbelow_from_rng(self._rng, bound)

    def _extend(self, m: int) -> np.ndarray:
        """Run one extension batch; returns Q packed as (m, kappa/64) words.

        The whole batch stays word-packed: the PRG block arrives as
        ``(kappa, ceil(m/64))`` uint64 columns, the per-column XOR with U
        is a single masked whole-matrix XOR, and the row layout comes out
        of the packed 64x64-block transpose — the ``(kappa, m)`` uint8
        expansion of the per-column loop never exists.
        """
        self._ensure_setup()
        with channel_span(self.chan, "extension", m=m):
            u_blob = _checked_u_blob(self.chan.recv(), self.kappa, m)
            u_cols = split_packed_rows(u_blob, self.kappa, m)
            q_cols = self._prg.packed_bits(m) ^ (u_cols & self._s_colmask)
            return transpose_packed(q_cols)[:m]

    # ------------------------------------------------------------------ #
    def send_chosen(self, messages: np.ndarray, domain: int = 1) -> None:
        """Send chosen-message pairs.

        ``messages`` has shape ``(m, 2, W)`` uint64: for OT ``i`` the
        receiver learns row ``messages[i, c_i]`` of ``W`` words.
        """
        msgs = np.asarray(messages, dtype=_U64)
        if msgs.ndim != 3 or msgs.shape[1] != 2:
            raise CryptoError(f"expected (m, 2, W) messages, got {msgs.shape}")
        m, _, width = msgs.shape
        q = self._extend(m)
        with channel_span(self.chan, "ot-transfer", m=m, width=width):
            rows0 = _rows_with_index(q, self._ot_index)
            rows1 = _rows_with_index(q ^ self._s_words[None, :], self._ot_index)
            pad0 = self.ro.mask(rows0, width, domain)
            pad1 = self.ro.mask(rows1, width, domain)
            cipher = np.stack([msgs[:, 0] ^ pad0, msgs[:, 1] ^ pad1], axis=1)
            self.chan.send(cipher)
        self._ot_index += m

    def send_correlated(self, deltas: np.ndarray, ring: Ring, domain: int = 2) -> np.ndarray:
        """Correlated OT over Z_{2^l}.

        For each OT ``i`` (and lane ``k``) the sender learns random
        ``x[i, k]`` and the receiver ``x[i, k] + c_i * deltas[i, k]``.
        Returns ``x`` with ``deltas``'s shape.
        """
        d = np.asarray(deltas, dtype=_U64)
        squeeze = d.ndim == 1
        if squeeze:
            d = d[:, None]
        if d.ndim != 2:
            raise CryptoError(f"expected (m,) or (m, k) deltas, got shape {d.shape}")
        m, lanes = d.shape
        q = self._extend(m)
        with channel_span(self.chan, "ot-transfer", m=m, lanes=lanes):
            rows0 = _rows_with_index(q, self._ot_index)
            rows1 = _rows_with_index(q ^ self._s_words[None, :], self._ot_index)
            x = ring.reduce(self.ro.mask(rows0, lanes, domain))
            x_s = ring.reduce(self.ro.mask(rows1, lanes, domain))
            correction = ring.add(ring.sub(ring.reduce(d), x_s), x)
            # Bit-pack to l bits per element: SecureML's truncated-message
            # optimization depends on sub-64-bit corrections costing less.
            self.chan.send(pack_ring_words(correction.reshape(1, -1), ring.bits)[0])
        self._ot_index += m
        return x[:, 0] if squeeze else x


class OtExtReceiver:
    """Extension-receiver session (the party that inputs choice bits)."""

    def __init__(
        self,
        chan: Channel,
        kappa: int = KAPPA,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
        session_tag: int = 0,
    ) -> None:
        if kappa % 64 != 0:
            raise CryptoError("kappa must be a multiple of 64")
        self.chan = chan
        self.kappa = kappa
        self.group = group
        self.ro = ro
        self._rng = make_rng(seed)
        self._prg0: BatchPrg | None = None
        self._prg1: BatchPrg | None = None
        self._ot_index = _session_base_index(session_tag)

    def _randbelow(self, bound: int) -> int:
        return randbelow_from_rng(self._rng, bound)

    def _ensure_setup(self) -> None:
        if self._prg0 is not None:
            return
        with channel_span(
            self.chan, "base-ot", kind="iknp", count=self.kappa,
            element_bytes=self.group.element_bytes,
        ):
            key_pairs = baseot.random_send(
                self.chan, self.kappa, self.group, randbelow=self._randbelow
            )
        self._prg0 = BatchPrg([k0 for k0, _ in key_pairs])
        self._prg1 = BatchPrg([k1 for _, k1 in key_pairs])

    def _extend(self, choices: np.ndarray) -> np.ndarray:
        """Run one extension batch; returns T packed as (m, kappa/64).

        Word-packed throughout: both PRG blocks come out of the batched
        Philox expansion, the choice vector is packed once and broadcast
        into every column with one whole-matrix XOR, and the U matrix is
        serialized straight from packed rows (byte-identical to packing
        the uint8 column matrix).
        """
        self._ensure_setup()
        c = np.asarray(choices, dtype=np.uint8)
        if c.ndim != 1 or not np.isin(c, (0, 1)).all():
            raise CryptoError("choices must be a 1-D bit vector")
        m = c.shape[0]
        with channel_span(self.chan, "extension", m=m):
            c_words = pack_bits_to_words(c)
            t0 = self._prg0.packed_bits(m)
            t1 = self._prg1.packed_bits(m)
            self.chan.send(concat_packed_rows(t0 ^ t1 ^ c_words[None, :], m))
            return transpose_packed(t0)[:m]

    # ------------------------------------------------------------------ #
    def recv_chosen(self, choices, width: int, domain: int = 1) -> np.ndarray:
        """Receive the chosen message per OT; returns ``(m, W)`` words."""
        c = np.asarray(choices, dtype=np.uint8)
        t = self._extend(c)
        with channel_span(self.chan, "ot-transfer", m=int(c.shape[0]), width=width):
            cipher = self.chan.recv()
            if cipher.shape != (c.shape[0], 2, width):
                raise CryptoError(f"unexpected ciphertext shape {cipher.shape}")
            pad = self.ro.mask(_rows_with_index(t, self._ot_index), width, domain)
            picked = cipher[np.arange(c.shape[0]), c.astype(np.int64)]
        self._ot_index += c.shape[0]
        return picked ^ pad

    def recv_correlated(
        self, choices, lanes: int | None, ring: Ring, domain: int = 2
    ) -> np.ndarray:
        """Receive ``x + c * delta`` per OT/lane.

        ``lanes=None`` mirrors a sender that passed 1-D deltas and returns
        a flat ``(m,)`` array; otherwise the result is ``(m, lanes)``.
        See :meth:`OtExtSender.send_correlated`.
        """
        c = np.asarray(choices, dtype=np.uint8)
        squeeze = lanes is None
        lanes = 1 if squeeze else lanes
        t = self._extend(c)
        with channel_span(self.chan, "ot-transfer", m=int(c.shape[0]), lanes=lanes):
            h_t = ring.reduce(self.ro.mask(_rows_with_index(t, self._ot_index), lanes, domain))
            n_elems = c.shape[0] * lanes
            packed = self.chan.recv()
        expected_words = packed_word_count(n_elems, ring.bits)
        if packed.shape != (expected_words,):
            raise CryptoError(f"unexpected correction shape {packed.shape}")
        correction = unpack_ring_words(packed[None, :], ring.bits, n_elems).reshape(
            c.shape[0], lanes
        )
        gated = ring.mul(correction, c.astype(_U64)[:, None])
        out = ring.add(h_t, gated)
        self._ot_index += c.shape[0]
        return out[:, 0] if squeeze else out
