"""Secret sharing schemes used by ABNN2 (arithmetic sharing over Z_{2^l})."""

from repro.sharing.additive import share, reconstruct, AdditiveSharing

__all__ = ["share", "reconstruct", "AdditiveSharing"]
