"""Additive (arithmetic) secret sharing over Z_{2^l}.

The paper's Section 2.3 scheme: ``Share(x)`` draws ``r`` uniformly and
outputs shares ``(r, x - r mod 2^l)``; ``Reconst`` adds them back.  Shares
support local addition, subtraction, and multiplication by public
constants — everything except multiplication of two shared values, which
is the job of the OT-based triplet protocols in :mod:`repro.core`.
"""

from __future__ import annotations

import numpy as np

from repro.utils.ring import Ring


def share(ring: Ring, value, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Split ``value`` into two uniform additive shares ``(s0, s1)``.

    Matches the paper's convention in Section 3: the client keeps the
    random share ``<x>_1 = r`` and sends ``<x>_0 = x - r`` to the server.
    """
    x = ring.reduce(value)
    s1 = ring.sample(rng, np.shape(x))
    s0 = ring.sub(x, s1)
    return s0, s1


def reconstruct(ring: Ring, s0, s1) -> np.ndarray:
    """Recombine two additive shares: ``x = s0 + s1 mod 2^l``."""
    return ring.add(s0, s1)


class AdditiveSharing:
    """Convenience wrapper binding a :class:`Ring` to sharing operations.

    Useful when a protocol passes one sharing context around instead of a
    bare ring; all operations are local (no communication).
    """

    def __init__(self, ring: Ring) -> None:
        self.ring = ring

    def share(self, value, rng: np.random.Generator):
        return share(self.ring, value, rng)

    def reconstruct(self, s0, s1):
        return reconstruct(self.ring, s0, s1)

    def add_local(self, a, b):
        """Both parties add their shares of two values: shares of a+b."""
        return self.ring.add(a, b)

    def sub_local(self, a, b):
        """Shares of ``a - b`` from shares of ``a`` and ``b``."""
        return self.ring.sub(a, b)

    def mul_public(self, a, k):
        """Shares of ``k * a`` for a public constant ``k``."""
        return self.ring.mul(a, self.ring.reduce(k))

    def add_public(self, a, k, party: int):
        """Shares of ``a + k`` for public ``k``: only one party offsets."""
        return self.ring.add(a, self.ring.reduce(k)) if party == 0 else self.ring.reduce(a)
