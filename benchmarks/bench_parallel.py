#!/usr/bin/env python
"""Parallel offline-phase benchmark: sharded triplets over a shaped link.

Measures the wall-clock of the full dot-product-triplet offline phase
(``repro.exec.triplets``) across an **executor x RO-backend grid** at
several worker counts over one *calibrated* shaped link
(:mod:`repro.net.netsim`), and pins the properties the execution engine
promises:

* **thread speedup** — ``workers=1`` runs the shard schedule strictly
  synchronously (sends block, no mux writer thread), so every message's
  serialization and propagation delay lands on the critical path of its
  ping-pong chunk loop.  ``workers>1`` overlaps shard compute with the
  simulated wire time of other shards (sleeps in the shaped channel
  release the GIL).  The thread rows keep PR 5's configuration
  (``ro=siphash``) and its regression floor.
* **process speedup** — the headline row runs the PR's fast path:
  ``executor="process"`` (shards in worker processes, mux streams
  proxied through the parent) with the GIL-releasing ``fast`` RO
  backend.  Gate: >= 3.2x over the sequential PR 5 baseline on the
  full workload.
* **executor / backend / worker-count independence** — shares *and*
  per-stream mux byte totals must be byte-identical across every row
  for a fixed seed (``shards``/``chunk_ots`` are protocol parameters;
  ``workers``/``executor``/RO backend are local knobs — ``fast`` is
  mask-compatible with ``siphash`` by construction).

The link is calibrated from a dry (unshaped) ``workers=1`` run rather
than fixed at a paper profile: the speedup ceiling of overlap is
``(C + B + R) / max(C, B)``, so a fixed 9 MB/s profile would gate on
the runner's CPU speed instead of on the engine's overlap.  The profile
is **latency-dominated WAN**: bandwidth is sized so the transfer time
is ``B = B_FRAC * C_dry`` (B_FRAC < 1 — the paper's offline phase ships
compact packed-digit blobs, compute-heavy relative to bytes), and RTT
so total propagation is ``R = R_FRAC * C_dry`` (R_FRAC > 1 — Table 3's
72 ms WAN RTT makes ping-pong latency, not bytes, the sequential
bottleneck).  Sequential pays C + B + R on its critical path; the
sharded pipeline hides R entirely and overlaps B with compute, so the
ceiling at the bottom is ``(1 + B_FRAC + R_FRAC) / max(B_FRAC, C_par/C)``.

Emits ``BENCH_parallel.json`` and exits non-zero if a measured speedup
falls below its recorded floor or any determinism check fails (the CI
smoke).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py            # full (256x256x64)
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick    # CI smoke (64x64x16)
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.triplets import TripletConfig
from repro.crypto.group import MODP_TEST
from repro.crypto.hash_ro import get_ro
from repro.exec import ShardPlan, parallel_triplets_client, parallel_triplets_server
from repro.net.channel import make_channel_pair
from repro.net.netsim import NetworkModel, shaped_channel_pair
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring

#: Regression floors on offline speedup at the highest worker count,
#: against the sequential PR 5 baseline (thread/siphash, workers=1).
#: The quick workload has proportionally more per-shard setup (base OTs,
#: process spawn) and a shorter pipeline, so it gates at reduced floors.
THREAD_SPEEDUP_FLOOR = 2.0
PROCESS_SPEEDUP_FLOOR = 3.2
QUICK_THREAD_SPEEDUP_FLOOR = 1.5
QUICK_PROCESS_SPEEDUP_FLOOR = 1.7

#: Shard count and chunk size are protocol parameters (both parties must
#: agree); they are fixed per workload so transcripts are reproducible.
SHARDS = 8

#: Link calibration, as fractions of the dry-run compute time C_dry:
#: transfer time B = B_FRAC * C_dry (bandwidth = bytes / B), total
#: propagation R = R_FRAC * C_dry (rtt = 2 * R * C_dry / n_messages).
#: B_FRAC < 1 < R_FRAC is the latency-dominated WAN regime described in
#: the module docstring; on the full workload the resulting RTT lands in
#: the paper's WAN range.
B_FRAC = 0.7
R_FRAC = 1.6

SEED = 20260806
TIMEOUT_S = 600.0


def make_workload(quick: bool):
    """Config + weights/mask matching ISSUE workload: Ring(16), 4(2,2)."""
    scheme = FragmentScheme.from_bits((2, 2))
    ring = Ring(16)
    if quick:
        m, n, o, chunk_ots = 64, 64, 16, 512
    else:
        m, n, o, chunk_ots = 256, 256, 64, 2048
    config = TripletConfig(ring=ring, scheme=scheme, m=m, n=n, o=o, group=MODP_TEST)
    rng = np.random.default_rng(SEED)
    lo, hi = scheme.weight_range
    w = rng.integers(lo, hi + 1, size=(m, n), dtype=np.int64)
    r = ring.sample(rng, (n, o))
    return config, chunk_ots, w, r


def run_pair(config, plan, w, r, channels):
    """One two-party offline run; returns (U, V, wall_s, stats)."""
    server_chan, client_chan = channels
    out: dict = {}
    stats = {"server": {}, "client": {}}
    errors: list[BaseException] = []

    def party(name, fn):
        def body():
            try:
                out[name] = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        return threading.Thread(target=body, name=f"bench-{name}", daemon=True)

    threads = [
        party(
            "u",
            lambda: parallel_triplets_server(
                server_chan, w, config, plan, seed=SEED + 1, stats_out=stats["server"]
            ),
        ),
        party(
            "v",
            lambda: parallel_triplets_client(
                client_chan, r, config, plan, seed=SEED + 2, stats_out=stats["client"]
            ),
        ),
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=TIMEOUT_S)
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    if any(t.is_alive() for t in threads):
        raise TimeoutError("benchmark party did not finish")
    return out["u"], out["v"], wall, stats


def calibrate(config, plan, w, r) -> tuple[NetworkModel, dict, np.ndarray, np.ndarray]:
    """Dry unshaped run -> link whose B and R are sized against this CPU."""
    channels = make_channel_pair(timeout_s=TIMEOUT_S)
    u_ref, v_ref, dry_wall, _stats = run_pair(config, plan, w, r, channels)
    snap = channels[0].stats.snapshot()
    bandwidth = snap.total_bytes / (B_FRAC * dry_wall)
    rtt = 2.0 * R_FRAC * dry_wall / snap.total_messages
    model = NetworkModel("calibrated", bandwidth_bytes_per_s=bandwidth, rtt_s=rtt)
    calibration = {
        "dry_wall_s": round(dry_wall, 3),
        "payload_bytes": snap.total_bytes,
        "payload_bytes_per_direction": dict(snap.bytes_sent),
        "messages": snap.total_messages,
        "b_frac": B_FRAC,
        "r_frac": R_FRAC,
    }
    return model, calibration, u_ref, v_ref


def grid(quick: bool) -> list[tuple[str, str, int]]:
    """(executor, ro, workers) rows; the first is the PR 5 baseline."""
    if quick:
        return [
            ("thread", "siphash", 1),
            ("thread", "siphash", 4),
            ("process", "siphash", 4),
            ("process", "fast", 4),
        ]
    return [
        ("thread", "siphash", 1),
        ("thread", "siphash", 2),
        ("thread", "siphash", 4),
        ("thread", "fast", 4),
        ("process", "siphash", 4),
        ("process", "fast", 4),
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI workload")
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_parallel.json"), help="JSON output path"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="write JSON but skip the floor gate"
    )
    args = parser.parse_args()

    config, chunk_ots, w, r = make_workload(args.quick)
    thread_floor = QUICK_THREAD_SPEEDUP_FLOOR if args.quick else THREAD_SPEEDUP_FLOOR
    process_floor = QUICK_PROCESS_SPEEDUP_FLOOR if args.quick else PROCESS_SPEEDUP_FLOOR

    def plan_for(executor: str, workers: int) -> ShardPlan:
        return ShardPlan(
            shards=SHARDS, workers=workers, chunk_ots=chunk_ots, executor=executor
        )

    def config_for(ro_name: str) -> TripletConfig:
        return dataclasses.replace(config, ro=get_ro(ro_name))

    print(
        f"workload: m={config.m} n={config.n} o={config.o} ring={config.ring.bits}b "
        f"scheme=4(2,2) total_ots={config.total_ots} shards={SHARDS} chunk={chunk_ots}"
    )
    model, calibration, u_ref, v_ref = calibrate(
        config_for("siphash"), plan_for("thread", 1), w, r
    )
    expected = config.ring.matmul(config.ring.reduce(w), r)
    if not (config.ring.add(u_ref, v_ref) == expected).all():
        print("REGRESSION: dry-run shares do not reconstruct W @ R", file=sys.stderr)
        return 1
    print(
        f"calibrated link: {model.bandwidth_bytes_per_s / 1e6:.2f} MB/s, "
        f"rtt {model.rtt_s * 1e3:.2f} ms "
        f"(dry wall {calibration['dry_wall_s']}s, "
        f"{calibration['payload_bytes']} B, {calibration['messages']} msgs, "
        f"B_FRAC={B_FRAC}, R_FRAC={R_FRAC})"
    )

    rows = []
    walls: dict[tuple[str, str, int], float] = {}
    identical_shares = True
    identical_streams = True
    ref_streams = None
    for executor, ro_name, workers in grid(args.quick):
        channels = shaped_channel_pair(model, timeout_s=TIMEOUT_S)
        u, v, wall, stats = run_pair(
            config_for(ro_name), plan_for(executor, workers), w, r, channels
        )
        walls[executor, ro_name, workers] = wall
        if not ((u == u_ref).all() and (v == v_ref).all()):
            identical_shares = False
        streams = {
            side: stats[side]["stream_totals"] for side in ("server", "client")
        }
        if ref_streams is None:
            ref_streams = streams
        elif streams != ref_streams:
            identical_streams = False
        baseline = walls["thread", "siphash", 1]
        row = {
            "executor": executor,
            "ro": ro_name,
            "workers": workers,
            "wall_s": round(wall, 3),
            "speedup": round(baseline / wall, 2),
            "occupancy_server": round(stats["server"]["pipeline_occupancy"], 3),
            "occupancy_client": round(stats["client"]["pipeline_occupancy"], 3),
        }
        rows.append(row)
        print(
            f"{executor}/{ro_name} workers={workers}: wall {row['wall_s']}s, "
            f"speedup {row['speedup']}x, occupancy srv {row['occupancy_server']} "
            f"/ cli {row['occupancy_client']}"
        )

    top = grid(args.quick)[-1][2]
    baseline = walls["thread", "siphash", 1]
    thread_speedup = round(baseline / walls["thread", "siphash", top], 2)
    process_speedup = round(baseline / walls["process", "fast", top], 2)
    result = {
        "bench": "parallel_offline",
        "quick": args.quick,
        "workload": {
            "m": config.m,
            "n": config.n,
            "o": config.o,
            "ring_bits": config.ring.bits,
            "scheme": "4(2,2)",
            "total_ots": config.total_ots,
            "shards": SHARDS,
            "chunk_ots": chunk_ots,
            "seed": SEED,
        },
        "link": {
            "bandwidth_bytes_per_s": round(model.bandwidth_bytes_per_s, 1),
            "rtt_s": round(model.rtt_s, 6),
            "calibration": calibration,
        },
        "rows": rows,
        "speedup": {
            f"thread_workers{top}": thread_speedup,
            f"process_workers{top}": process_speedup,
        },
        "identical_shares": identical_shares,
        "identical_stream_totals": identical_streams,
        "floors": {
            "speedup_thread": thread_floor,
            "speedup_process": process_floor,
        },
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.no_assert:
        return 0
    failures = []
    if thread_speedup < thread_floor:
        failures.append(
            f"thread offline speedup {thread_speedup}x at workers={top} "
            f"below floor {thread_floor}x"
        )
    if process_speedup < process_floor:
        failures.append(
            f"process offline speedup {process_speedup}x at workers={top} "
            f"below floor {process_floor}x"
        )
    if not identical_shares:
        failures.append("shares differ across executors/backends (determinism broken)")
    if not identical_streams:
        failures.append(
            "per-stream byte totals differ across executors/backends "
            "(transcripts drifted)"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
