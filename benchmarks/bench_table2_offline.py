"""Table 2 — offline dot-product triplet generation for the Fig-4 network.

Paper setting: LAN, ring Z_{2^32}, the 784-128-128-10 MLP, batch sizes
{1, 32, 64, 128}, fragment schemes per bitwidth.  We run the real OT
protocols, record measured traffic and compute time, and project the LAN
wall-clock.  (Default batches are trimmed to {1, 8}; set
``REPRO_BENCH_FULL=1`` for the paper's grid.)

Shapes that must reproduce (and are asserted):

* every (2,2,...) scheme beats the 1-out-of-2 decomposition (1,...,1) on
  batch-1 communication;
* ternary < binary-free multi-bit schemes on both axes;
* amortized per-prediction cost falls as the batch grows.
"""

import numpy as np
import pytest

from conftest import FIG4_LAYERS, batches_for_table2, random_weights
from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.net import run_protocol
from repro.net.netsim import LAN
from repro.perf.costmodel import network_offline_comm_bits
from repro.quant.fragments import TABLE2_SCHEMES
from repro.utils.ring import Ring

RING = Ring(32)

SCHEMES = [
    "8(1,...,1)",
    "8(2,2,2,2)",
    "8(3,3,2)",
    "8(4,4)",
    "6(2,2,2)",
    "4(2,2)",
    "3(2,1)",
    "ternary",
    "binary",
]

#: Paper's batch-1 numbers (run time s, comm MB) for cross-reference.
PAPER_BATCH1 = {
    "8(1,...,1)": (2.07, 32.42),
    "8(2,2,2,2)": (1.58, 19.52),
    "8(3,3,2)": (1.66, 18.47),
    "8(4,4)": (1.99, 20.72),
    "6(2,2,2)": (1.26, 14.87),
    "4(2,2)": (0.97, 9.91),
    "3(2,1)": (0.87, 9.01),
    "ternary": (0.59, 4.51),
    "binary": (0.52, 4.06),
}


def _offline_fig4(scheme, batch, group, rng):
    """Run triplet generation for all three layers; aggregate stats."""
    total_bytes = rounds = 0
    seconds = 0.0
    for idx, (m, n) in enumerate(FIG4_LAYERS):
        w = random_weights(scheme, (m, n), rng)
        r = RING.sample(rng, (n, batch))
        config = TripletConfig(ring=RING, scheme=scheme, m=m, n=n, o=batch, group=group)
        result = run_protocol(
            lambda ch: generate_triplets_server(ch, w, config, seed=idx),
            lambda ch: generate_triplets_client(
                ch, r, config, np.random.default_rng(idx + 50), seed=idx + 100
            ),
            timeout_s=1200,
        )
        total_bytes += result.total_bytes
        rounds += result.rounds
        seconds += result.wall_time_s
    return seconds, total_bytes, rounds


@pytest.mark.parametrize("batch", batches_for_table2())
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_table2_offline(benchmark, scheme_name, batch, bench_group, bench_rng):
    scheme = TABLE2_SCHEMES[scheme_name]

    def run():
        return _offline_fig4(scheme, batch, bench_group, bench_rng)

    seconds, total_bytes, rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    lan_s = LAN.estimate_s(seconds, total_bytes, rounds)
    predicted_mb = network_offline_comm_bits(FIG4_LAYERS, scheme, batch, 32) / 8 / 2**20
    benchmark.extra_info.update(
        {
            "scheme": scheme_name,
            "batch": batch,
            "comm_MB": round(total_bytes / 2**20, 2),
            "predicted_MB": round(predicted_mb, 2),
            "LAN_s": round(lan_s, 3),
            "paper_batch1_s_MB": PAPER_BATCH1.get(scheme_name),
        }
    )
    # Measured traffic must track the Table 1 model (base OTs aside).
    assert total_bytes >= predicted_mb * 2**20 * 0.98
    assert total_bytes <= predicted_mb * 2**20 + 200_000


def test_table2_shapes(bench_group, bench_rng):
    """The qualitative claims of Table 2, on live protocol runs."""
    results = {
        name: _offline_fig4(TABLE2_SCHEMES[name], 1, bench_group, bench_rng)
        for name in ("8(1,...,1)", "8(2,2,2,2)", "ternary", "binary")
    }
    # (2,2,2,2) beats (1,...,1) on bytes at batch 1 — the headline claim.
    assert results["8(2,2,2,2)"][1] < results["8(1,...,1)"][1]
    # smaller bitwidth => less traffic
    assert results["binary"][1] < results["ternary"][1] < results["8(2,2,2,2)"][1]


def test_table2_amortization(bench_group, bench_rng):
    """Per-prediction cost falls with batch size (multi-batch reuse)."""
    scheme = TABLE2_SCHEMES["4(2,2)"]
    _, bytes_1, _ = _offline_fig4(scheme, 1, bench_group, bench_rng)
    _, bytes_8, _ = _offline_fig4(scheme, 8, bench_group, bench_rng)
    assert bytes_8 / 8 < bytes_1
