#!/usr/bin/env python
"""Serving-path benchmark: cross-session batching at 100 concurrent clients.

Fires one wave of N concurrent prediction clients (one session, one
bank-mode round each) at a :class:`repro.serve.server.PredictionServer`
and measures fleet throughput (sessions/sec over the wave) and
per-client latency (connect -> logits -> close) with and without the
:class:`repro.serve.scheduler.BatchScheduler`.

**The gate compares shipped configurations, not abstract mechanisms**:

* ``tcp_shaped/unbatched_bounded`` — the server exactly as the CLI
  starts it today: no scheduler, ``max_sessions=4``.  Admission is
  bounded because unbatched sessions are mutually independent full
  protocol runs; the bound is the server's only protection against a
  connection storm.  This row is the gate baseline.
* ``tcp_shaped/batched_wide`` — the batching configuration this bench
  gates: scheduler on (50 ms window, width cap 16) and wide admission
  (``max_sessions=N``), which batching is what makes safe — concurrent
  granted rounds coalesce into a few wide online rounds instead of N
  independent ones.  Floors: sessions/sec >= SPEEDUP_FLOOR x the
  bounded baseline **and** p95 latency <= the baseline's p95.
* ``tcp_shaped/unbatched_wide`` — honesty row: wide admission *without*
  batching.  On independent per-client links it overlaps the same wire
  time, so most of the wall-clock win over the baseline comes from
  admission, not the wide math; this row keeps that decomposition in
  the JSON so the gated speedup cannot be misread as pure batching
  magic.  What batching adds over this row is server-side: one wide
  linear pass and one scheduler drain instead of N interleaved rounds.

The gated rows run a **linear model** (one Dense layer, no GC), because
garbled ReLU is per-client by protocol (the client garbles) and would
dilute the linear-layer batching under measurement.  Two ungated
``memory/mlp_*`` context rows run the MLP used by the serve tests so the
GC-bound shape is still on record.

The link is calibrated from a dry unshaped run (same idiom as
``bench_parallel.py``): bandwidth is sized so per-session transfer time
is ``B_FRAC * C_dry`` and RTT so per-session propagation is
``R_FRAC * C_dry`` — with ``R_FRAC >> 1`` and an absolute RTT floor of
``MIN_RTT_S``, the regime is latency-dominated WAN and the gate
measures scheduling, not the runner's CPU.  Each client gets its own
:class:`~repro.net.netsim.LinkShaper` (its own WAN link to the server),
keyed by the server-assigned channel session id, which both endpoints
agree on after the TCP handshake.

Emits ``BENCH_serve.json`` and exits non-zero if a floor is violated or
any client's logits disagree with the plaintext reference (the CI
smoke runs ``--quick``).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full (N=100)
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke (N=16)
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.protocol import ModelMeta
from repro.crypto.group import MODP_TEST
from repro.net.channel import make_channel_pair
from repro.net.netsim import LinkShaper, NetworkModel, ShapedChannel
from repro.nn.layers import Dense
from repro.nn.model import Sequential, mnist_mlp
from repro.nn.quantize import quantize_model
from repro.quant.fixed_point import FixedPointEncoder
from repro.quant.fragments import FragmentScheme
from repro.serve import (
    BatchScheduler,
    ClientSession,
    PredictionClient,
    PredictionServer,
    ServerSession,
    TripletBank,
)
from repro.utils.ring import Ring

#: Regression floors on wave throughput, batched_wide vs the production
#: default (unbatched, max_sessions=4).  The quick wave is only one
#: batch window deep, so the fixed window/ramp overheads weigh
#: proportionally more and it gates at a reduced floor.
SPEEDUP_FLOOR = 3.0
QUICK_SPEEDUP_FLOOR = 1.5

N_CLIENTS = 100
QUICK_N_CLIENTS = 16

#: Scheduler configuration under test.
WINDOW_MS = 50.0
BATCH_MAX = 16

#: Link calibration, as fractions of the dry per-session wall C_dry:
#: per-session transfer B = B_FRAC * C_dry, per-session propagation
#: R = R_FRAC * C_dry (rtt = 2 * R / n_messages).  MIN_RTT_S keeps the
#: link latency-dominated even on fast CPUs where C_dry underestimates
#: a useful WAN RTT; with ~9 messages/session it prices a session at
#: ~90 ms of propagation, inside the paper's WAN settings.
B_FRAC = 0.5
R_FRAC = 8.0
MIN_RTT_S = 0.020

#: Client connect stagger: identical across rows, small next to one
#: shaped session, just enough to keep 100 simultaneous connect(2)
#: calls from contending on one accept loop artificially.
RAMP_S = 0.0005

SEED = 20260808
BANK_SEED = 11
TIMEOUT_S = 120.0
GROUP = MODP_TEST


# --------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------- #
def make_models():
    """(linear, mlp) quantized models: gated rows are GC-free by design."""
    scheme = FragmentScheme.ternary()
    ring = Ring(32)
    linear = quantize_model(
        Sequential([Dense(256, 10, seed=5)]), scheme, ring, frac_bits=6
    )
    mlp = quantize_model(
        mnist_mlp(seed=7, hidden=4, input_dim=16), scheme, ring, frac_bits=6
    )
    return linear, mlp


def make_inputs(qmodel, n: int):
    """Per-client inputs plus plaintext reference logits."""
    in_features = qmodel.layers[0].w_int.shape[1]
    xs, refs = [], []
    for i in range(n):
        rng = np.random.default_rng(SEED + i)
        x = rng.normal(scale=0.25, size=(1, in_features))
        xs.append(x)
        refs.append(qmodel.forward_int(qmodel.encoder.encode(x.T)))
    return xs, refs


def fresh_bank(qmodel, bank_path: str, n_rounds: int) -> TripletBank:
    """A bank holding exactly ``n_rounds`` persisted rounds, regeneration-free."""
    bank = TripletBank(
        qmodel, 1, group=GROUP, seed=BANK_SEED,
        auto_replenish=False, capacity=n_rounds,
    )
    loaded = bank.load(bank_path)
    if loaded != n_rounds:
        raise RuntimeError(f"bank reload: expected {n_rounds} rounds, got {loaded}")
    return bank


def prepare_bank_file(qmodel, n_rounds: int, tmpdir: str, name: str) -> str:
    bank = TripletBank(
        qmodel, 1, group=GROUP, seed=BANK_SEED,
        auto_replenish=False, capacity=n_rounds,
    )
    t0 = time.perf_counter()
    bank.fill(n_rounds)
    path = os.path.join(tmpdir, f"{name}.bank")
    bank.save(path)
    print(
        f"banked {n_rounds} offline rounds for {name} "
        f"in {time.perf_counter() - t0:.1f}s"
    )
    return path


# --------------------------------------------------------------------- #
# wave runners
# --------------------------------------------------------------------- #
def _percentile_ms(latencies, frac: float) -> float:
    xs = sorted(latencies)
    idx = max(0, int(len(xs) * frac + 0.5) - 1)
    return xs[idx] * 1000.0


def _wave(n: int, session_fn):
    """Run ``session_fn(i)`` on n ramped threads; wall + per-client latency."""
    latencies = [0.0] * n
    errors: list[BaseException] = []

    def worker(i: int) -> None:
        time.sleep(i * RAMP_S)
        t0 = time.perf_counter()
        try:
            session_fn(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced as a gate failure
            errors.append(exc)
        latencies[i] = time.perf_counter() - t0

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"bench-client-{i}", daemon=True)
        for i in range(n)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=TIMEOUT_S)
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    if any(t.is_alive() for t in threads):
        raise TimeoutError("benchmark client did not finish")
    return wall, latencies


def run_tcp_row(
    qmodel, meta, bank_path, xs, refs, *,
    n: int, max_sessions: int, batched: bool, link: NetworkModel, label: str,
):
    """One wave against a real PredictionServer over per-client shaped links."""
    shapers: dict[int, LinkShaper] = {}
    shapers_lock = threading.Lock()

    def shaper_for(session_id: int) -> LinkShaper:
        with shapers_lock:
            shaper = shapers.get(session_id)
            if shaper is None:
                shaper = shapers[session_id] = LinkShaper(link)
            return shaper

    def wrap_server(chan):
        return ShapedChannel(chan, shaper_for(chan.session_id), direction=0)

    def wrap_client(chan):
        # By wrap time tcp.connect has adopted the server-assigned session
        # id, so both endpoints resolve the same per-client link.
        return ShapedChannel(chan, shaper_for(chan.session_id), direction=1)

    bank = fresh_bank(qmodel, bank_path, n)
    srv = PredictionServer(
        qmodel, bank, port=0,
        max_sessions=max_sessions,
        backlog=n + 8,
        session_timeout_s=TIMEOUT_S,
        group=GROUP,
        channel_wrap=wrap_server,
        batch_window_ms=WINDOW_MS if batched else None,
        batch_max=BATCH_MAX,
        max_queued=n + 8,
    )

    def one_session(i: int) -> None:
        client = PredictionClient(
            meta, 1, port=srv.port, timeout_s=TIMEOUT_S, group=GROUP,
            seed=SEED + 5000 + i, channel_wrap=wrap_client,
        )
        try:
            logits, _labels = client.predict(xs[i])
        finally:
            client.close()
        if not (logits == refs[i]).all():
            raise RuntimeError(f"client {i} logits disagree with plaintext reference")

    try:
        with srv:
            wall, latencies = _wave(n, one_session)
            metrics = srv.metrics()
    finally:
        bank.stop()
    if metrics["sessions_served"] != n or metrics["sessions_failed"]:
        raise RuntimeError(
            f"{label}: served {metrics['sessions_served']}/{n}, "
            f"failed {metrics['sessions_failed']}"
        )
    return _row(label, "tcp_shaped", n, max_sessions, batched, wall, latencies,
                metrics["scheduler"])


def run_memory_row(qmodel, meta, bank_path, xs, refs, *, n: int, batched: bool,
                   label: str):
    """One wave of in-memory sessions (no link): pure server-side cost."""
    bank = fresh_bank(qmodel, bank_path, n)
    scheduler = (
        BatchScheduler(bank, window_ms=WINDOW_MS, batch_max=BATCH_MAX,
                       max_queued=n + 8)
        if batched else None
    )
    server_threads: list[threading.Thread] = []
    server_errors: list[BaseException] = []
    enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)

    def one_session(i: int) -> None:
        server_chan, client_chan = make_channel_pair(timeout_s=TIMEOUT_S)

        def serve() -> None:
            try:
                ServerSession(
                    server_chan, qmodel, bank, session_id=i + 1,
                    group=GROUP, scheduler=scheduler,
                ).run()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                server_errors.append(exc)

        thread = threading.Thread(target=serve, name=f"bench-serve-{i}", daemon=True)
        server_threads.append(thread)
        thread.start()
        session = ClientSession(client_chan, meta, 1, group=GROUP, seed=SEED + i)
        try:
            logits = session.predict_encoded(enc.encode(xs[i].T))
        finally:
            session.close()
        if not (logits == refs[i]).all():
            raise RuntimeError(f"client {i} logits disagree with plaintext reference")

    try:
        wall, latencies = _wave(n, one_session)
    finally:
        if scheduler is not None:
            scheduler.stop()
        bank.stop()
    for thread in server_threads:
        thread.join(timeout=TIMEOUT_S)
    if server_errors:
        raise server_errors[0]
    return _row(label, "memory", n, n, batched, wall, latencies,
                scheduler.metrics() if scheduler is not None else None)


def _row(label, transport, n, max_sessions, batched, wall, latencies, sched_metrics):
    row = {
        "label": label,
        "transport": transport,
        "n_clients": n,
        "max_sessions": max_sessions,
        "batched": batched,
        "wall_s": round(wall, 3),
        "sessions_per_s": round(n / wall, 2),
        "p50_ms": round(_percentile_ms(latencies, 0.50), 1),
        "p95_ms": round(_percentile_ms(latencies, 0.95), 1),
        "scheduler": None,
    }
    if sched_metrics is not None:
        row["scheduler"] = {
            key: sched_metrics[key]
            for key in (
                "batched", "batched_rounds", "batch_width_max",
                "batch_width_mean", "p95_wait_ms", "denied_queue_depth",
                "denied_bank_depth", "denied_exhausted",
            )
        }
    print(
        f"{label}: wall {row['wall_s']}s, {row['sessions_per_s']} sessions/s, "
        f"p50 {row['p50_ms']}ms, p95 {row['p95_ms']}ms"
        + (
            f", width max {row['scheduler']['batch_width_max']} "
            f"mean {row['scheduler']['batch_width_mean']}"
            if row["scheduler"] else ""
        )
    )
    return row


# --------------------------------------------------------------------- #
# calibration
# --------------------------------------------------------------------- #
def calibrate(qmodel, meta, bank_path, xs, n_banked: int):
    """Dry unshaped sessions -> link sized against this CPU (see module doc)."""
    n_dry = 8
    bank = fresh_bank(qmodel, bank_path, n_banked)
    enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)
    walls, payload_bytes, messages = [], 0, 0
    try:
        for i in range(n_dry):
            server_chan, client_chan = make_channel_pair(timeout_s=TIMEOUT_S)
            thread = threading.Thread(
                target=ServerSession(
                    server_chan, qmodel, bank, session_id=i + 1, group=GROUP
                ).run,
                daemon=True,
            )
            thread.start()
            t0 = time.perf_counter()
            session = ClientSession(client_chan, meta, 1, group=GROUP, seed=SEED + i)
            session.predict_encoded(enc.encode(xs[i % len(xs)].T))
            session.close()
            walls.append(time.perf_counter() - t0)
            thread.join(timeout=TIMEOUT_S)
            snap = server_chan.stats.snapshot()
            payload_bytes, messages = snap.total_bytes, snap.total_messages
    finally:
        bank.stop()
    # First session pays interpreter warm-up; calibrate on the rest.
    dry_wall = statistics.median(walls[1:])
    rtt = max(MIN_RTT_S, 2.0 * R_FRAC * dry_wall / messages)
    bandwidth = payload_bytes / (B_FRAC * dry_wall)
    model = NetworkModel(
        "serve-calibrated", bandwidth_bytes_per_s=bandwidth, rtt_s=rtt
    )
    calibration = {
        "dry_session_wall_s": round(dry_wall, 5),
        "session_payload_bytes": payload_bytes,
        "session_messages": messages,
        "b_frac": B_FRAC,
        "r_frac": R_FRAC,
        "min_rtt_s": MIN_RTT_S,
    }
    return model, calibration


# --------------------------------------------------------------------- #
# main
# --------------------------------------------------------------------- #
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI wave")
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_serve.json"), help="JSON output path"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="write JSON but skip the floor gate"
    )
    args = parser.parse_args()

    n = QUICK_N_CLIENTS if args.quick else N_CLIENTS
    floor = QUICK_SPEEDUP_FLOOR if args.quick else SPEEDUP_FLOOR
    n_mlp = min(n, BATCH_MAX)

    linear, mlp = make_models()
    linear_meta = ModelMeta.from_model(linear)
    mlp_meta = ModelMeta.from_model(mlp)
    xs, refs = make_inputs(linear, n)
    mlp_xs, mlp_refs = make_inputs(mlp, n_mlp)
    print(
        f"wave: {n} concurrent clients, window {WINDOW_MS}ms, "
        f"batch_max {BATCH_MAX}, ramp {RAMP_S * 1e3}ms/client"
    )

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmpdir:
        linear_bank = prepare_bank_file(linear, n, tmpdir, "linear")
        mlp_bank = prepare_bank_file(mlp, n_mlp, tmpdir, "mlp")
        link, calibration = calibrate(linear, linear_meta, linear_bank, xs, n)
        print(
            f"calibrated link: {link.bandwidth_bytes_per_s / 1e6:.2f} MB/s, "
            f"rtt {link.rtt_s * 1e3:.1f} ms "
            f"(dry session {calibration['dry_session_wall_s'] * 1e3:.2f}ms, "
            f"{calibration['session_payload_bytes']} B, "
            f"{calibration['session_messages']} msgs)"
        )

        rows = [
            run_memory_row(
                linear, linear_meta, linear_bank, xs, refs,
                n=n, batched=False, label="memory/unbatched",
            ),
            run_memory_row(
                linear, linear_meta, linear_bank, xs, refs,
                n=n, batched=True, label="memory/batched",
            ),
            run_tcp_row(
                linear, linear_meta, linear_bank, xs, refs,
                n=n, max_sessions=4, batched=False, link=link,
                label="tcp_shaped/unbatched_bounded",
            ),
            run_tcp_row(
                linear, linear_meta, linear_bank, xs, refs,
                n=n, max_sessions=n, batched=False, link=link,
                label="tcp_shaped/unbatched_wide",
            ),
            run_tcp_row(
                linear, linear_meta, linear_bank, xs, refs,
                n=n, max_sessions=n, batched=True, link=link,
                label="tcp_shaped/batched_wide",
            ),
            run_memory_row(
                mlp, mlp_meta, mlp_bank, mlp_xs, mlp_refs,
                n=n_mlp, batched=False, label="memory/mlp_unbatched",
            ),
            run_memory_row(
                mlp, mlp_meta, mlp_bank, mlp_xs, mlp_refs,
                n=n_mlp, batched=True, label="memory/mlp_batched",
            ),
        ]

    by_label = {row["label"]: row for row in rows}
    baseline = by_label["tcp_shaped/unbatched_bounded"]
    gated = by_label["tcp_shaped/batched_wide"]
    speedup = round(gated["sessions_per_s"] / baseline["sessions_per_s"], 2)
    result = {
        "bench": "serve",
        "quick": args.quick,
        "workload": {
            "gated_model": "Dense(256,10) ternary Ring(32) frac_bits=6",
            "context_model": "mnist_mlp(hidden=4, input_dim=16)",
            "n_clients": n,
            "window_ms": WINDOW_MS,
            "batch_max": BATCH_MAX,
            "ramp_s": RAMP_S,
            "seed": SEED,
        },
        "link": {
            "bandwidth_bytes_per_s": round(link.bandwidth_bytes_per_s, 1),
            "rtt_s": round(link.rtt_s, 6),
            "calibration": calibration,
        },
        "rows": rows,
        "speedup": speedup,
        "p95_ms": {
            "unbatched_bounded": baseline["p95_ms"],
            "batched_wide": gated["p95_ms"],
        },
        "floors": {
            "speedup": floor,
            "p95_not_worse_than_baseline": True,
            "min_batch_width": 2,
        },
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.no_assert:
        return 0
    failures = []
    if speedup < floor:
        failures.append(
            f"batched sessions/sec {gated['sessions_per_s']} is only {speedup}x "
            f"the bounded baseline {baseline['sessions_per_s']} (floor {floor}x)"
        )
    if gated["p95_ms"] > baseline["p95_ms"]:
        failures.append(
            f"batched p95 {gated['p95_ms']}ms exceeds the bounded baseline's "
            f"{baseline['p95_ms']}ms"
        )
    sched = gated["scheduler"]
    if sched["batch_width_max"] < 2:
        failures.append("gated row never actually batched (max width < 2)")
    denied = (
        sched["denied_queue_depth"] + sched["denied_bank_depth"]
        + sched["denied_exhausted"]
    )
    if denied:
        failures.append(f"gated row denied {denied} sessions")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
