"""Table 5 — end-to-end prediction vs QUOTIENT (ternary only).

Paper setting: Fig-4 network over QUOTIENT's WAN (24.3 MB/s, 40 ms RTT),
batch {1, 128}; ABNN2's binary row against QUOTIENT's published numbers
(no public code, so QUOTIENT runs as the two-binary-COT re-implementation
described in their paper).

Shapes that must reproduce (asserted):

* the two systems land in the same ballpark (paper: "comparable
  efficiency") — neither is >10x from the other on traffic;
* ABNN2's binary traffic undercuts QUOTIENT's ternary traffic (one
  (2 1)-OT per weight vs two COTs per weight).
"""

import pytest

from conftest import batches_for_table45
from repro.baselines.quotient import quotient_predict
from repro.core.protocol import secure_predict
from repro.net.netsim import LAN, WAN_QUOTIENT

MB = 1024 * 1024

#: Paper Table 5: QUOTIENT (LAN s, WAN s) and ABNN2 binary-l32 rows.
PAPER = {
    "QUOTIENT": {1: (0.356, 6.8), 128: (2.24, 8.3)},
    "ABNN2-binary": {1: (1.008, 2.44), 128: (3.13, 10.84)},
}


def _info(report, label, batch):
    compute = report.offline_client.seconds + report.online_client.seconds
    return {
        "system": label,
        "batch": batch,
        "compute_s": round(compute, 3),
        "comm_MB": round(report.total_bytes / MB, 2),
        "LAN_s": round(LAN.estimate_s(compute, report.total_bytes, report.rounds), 3),
        "WAN_s": round(WAN_QUOTIENT.estimate_s(compute, report.total_bytes, report.rounds), 3),
    }


@pytest.mark.parametrize("batch", batches_for_table45())
def test_table5_abnn2_binary(benchmark, batch, quantized_fig4, fig4_dataset, bench_group):
    qmodel = quantized_fig4["binary"]
    x = fig4_dataset.test_x[:batch]
    report = benchmark.pedantic(
        lambda: secure_predict(qmodel, x, group=bench_group, timeout_s=2400),
        rounds=1,
        iterations=1,
    )
    info = _info(report, "ABNN2-binary", batch)
    info["paper_LAN_WAN"] = PAPER["ABNN2-binary"].get(batch)
    benchmark.extra_info.update(info)
    assert (report.predictions == qmodel.predict(x)).all()


@pytest.mark.parametrize("batch", batches_for_table45())
def test_table5_quotient(benchmark, batch, quantized_fig4, fig4_dataset, bench_group):
    qmodel = quantized_fig4["ternary"]
    x = fig4_dataset.test_x[:batch]
    report = benchmark.pedantic(
        lambda: quotient_predict(qmodel, x, group=bench_group, timeout_s=2400),
        rounds=1,
        iterations=1,
    )
    info = _info(report, "QUOTIENT-ternary", batch)
    info["paper_LAN_WAN"] = PAPER["QUOTIENT"].get(batch)
    benchmark.extra_info.update(info)
    assert (report.predictions == qmodel.predict(x)).all()


def test_table5_shapes(quantized_fig4, fig4_dataset, bench_group):
    """Comparable efficiency; binary ABNN2 leaner than ternary QUOTIENT."""
    x = fig4_dataset.test_x[:1]
    abnn2 = secure_predict(quantized_fig4["binary"], x, group=bench_group, timeout_s=2400)
    quotient = quotient_predict(
        quantized_fig4["ternary"], x, group=bench_group, timeout_s=2400
    )
    ratio = quotient.total_bytes / abnn2.total_bytes
    assert 1.0 < ratio < 10.0
