"""Table 1 — OT complexity of SecureML vs ABNN2 (analytic, verified).

The paper's Table 1 is a formula table; this bench evaluates the
formulas at representative sizes, *verifies them against measured
protocol traffic*, and records the ratios the rest of the evaluation
depends on.
"""

import numpy as np

from conftest import random_weights
from repro.baselines.secureml import (
    SecureMlConfig,
    secureml_triplets_client,
    secureml_triplets_server,
)
from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.net import run_protocol
from repro.perf.costmodel import (
    abnn2_comm_bits,
    abnn2_ot_count,
    secureml_comm_bits,
    secureml_ot_count,
)
from repro.quant.fragments import TABLE2_SCHEMES
from repro.utils.ring import Ring

M, N, O = 16, 32, 4
RING = Ring(32)


def test_table1_formula_summary(benchmark):
    """Evaluate and record Table 1 at (m, n, o) = (16, 32, 4), l = 32."""

    def compute():
        scheme = TABLE2_SCHEMES["8(2,2,2,2)"]
        return {
            "secureml_ots": secureml_ot_count(M, N, O, RING.bits),
            "secureml_comm_bits": secureml_comm_bits(M, N, O, RING.bits),
            "abnn2_ots": abnn2_ot_count(scheme, M, N),
            "abnn2_multi_comm_bits": abnn2_comm_bits(scheme, M, N, O, RING.bits, "multi"),
            "abnn2_one_comm_bits": abnn2_comm_bits(scheme, M, N, 1, RING.bits, "one"),
        }

    info = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info.update(info)
    # ABNN2 does fewer OTs and moves fewer bits in both modes.
    assert info["abnn2_ots"] < info["secureml_ots"]
    assert info["abnn2_multi_comm_bits"] < info["secureml_comm_bits"]
    assert info["abnn2_one_comm_bits"] < info["secureml_comm_bits"] / O


def test_table1_model_matches_measured_abnn2(benchmark, bench_group, bench_rng):
    """The M-Batch comm formula must match the wire within base-OT slack."""
    scheme = TABLE2_SCHEMES["8(2,2,2,2)"]
    w = random_weights(scheme, (M, N), bench_rng)
    r = RING.sample(bench_rng, (N, O))
    config = TripletConfig(ring=RING, scheme=scheme, m=M, n=N, o=O, group=bench_group)

    def run():
        return run_protocol(
            lambda ch: generate_triplets_server(ch, w, config, seed=1),
            lambda ch: generate_triplets_client(ch, r, config, np.random.default_rng(2), seed=3),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    predicted = abnn2_comm_bits(scheme, M, N, O, RING.bits, "multi") / 8
    benchmark.extra_info["measured_bytes"] = result.total_bytes
    benchmark.extra_info["predicted_bytes"] = predicted
    assert 0 <= result.total_bytes - predicted < 20_000


def test_table1_model_matches_measured_secureml(benchmark, bench_group, bench_rng):
    """SecureML's measured traffic sits in the formula's ballpark."""
    w = bench_rng.integers(-1000, 1000, size=(8, 16))
    r = RING.sample(bench_rng, (16, 1))
    config = SecureMlConfig(ring=RING, m=8, n=16, o=1, group=bench_group)

    def run():
        return run_protocol(
            lambda ch: secureml_triplets_server(ch, w, config, seed=1),
            lambda ch: secureml_triplets_client(ch, r, config, seed=2),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    predicted = secureml_comm_bits(8, 16, 1, RING.bits) / 8
    benchmark.extra_info["measured_bytes"] = result.total_bytes
    benchmark.extra_info["predicted_bytes"] = predicted
    # Two counting differences cancel only partially: the formula counts
    # both message halves where our COT sends one correction (we run
    # cheaper), but it also assumes SecureML's 128-bit RO packing of
    # several short messages into one extension instance, which we do
    # not implement (we run dearer: a full kappa-bit column per weight
    # bit).  At l = 32 the net effect is ~1.5x the model; at l = 64 —
    # Table 3's setting — measured traffic drops *below* the model, so
    # the Table 3 comparison shapes are conservative.
    assert 0.4 * predicted < result.total_bytes < 1.7 * predicted
