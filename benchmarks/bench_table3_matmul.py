"""Table 3 — offline matrix multiplication vs SecureML.

Paper setting: a 128 x d quantized matrix against a d-vector, ring
Z_{2^64}, one batch; LAN and a 9 MB/s / 72 ms RTT WAN; schemes binary,
ternary, 8(2,2,2,2) against SecureML's per-bit COT offline phase.
``d`` defaults to {100, 250} (``REPRO_BENCH_FULL=1`` for the paper's
{100, 500, 1000}).

Shapes that must reproduce (asserted on the measured runs):

* communication: SecureML ~25x / ~20x / ~4x above binary / ternary /
  8-bit ABNN2;
* projected WAN time: ABNN2 faster by an order of magnitude for
  binary/ternary.
"""

import numpy as np
import pytest

from conftest import dims_for_table3, random_weights
from repro.baselines.secureml import (
    SecureMlConfig,
    secureml_triplets_client,
    secureml_triplets_server,
)
from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.net import run_protocol
from repro.net.netsim import LAN, WAN_SECUREML
from repro.utils.ring import Ring

RING = Ring(64)
M = 128
SCHEME_NAMES = ["binary", "ternary", "8(2,2,2,2)"]

#: Paper's d=1000 row (LAN s, WAN s, comm MB) for cross-reference.
PAPER_D1000 = {
    "binary": (2.69, 12.74, 78.13),
    "ternary": (3.24, 16.58, 93.76),
    "8(2,2,2,2)": (15.39, 75.01, 437.51),
    "SecureML": (7.9, 463.2, 1945.6),
}


def _run_abnn2(scheme_name, d, group, rng):
    from repro.quant.fragments import TABLE2_SCHEMES

    scheme = TABLE2_SCHEMES[scheme_name]
    w = random_weights(scheme, (M, d), rng)
    r = RING.sample(rng, (d, 1))
    config = TripletConfig(ring=RING, scheme=scheme, m=M, n=d, o=1, group=group)
    return run_protocol(
        lambda ch: generate_triplets_server(ch, w, config, seed=1),
        lambda ch: generate_triplets_client(ch, r, config, np.random.default_rng(2), seed=3),
        timeout_s=1200,
    )


def _run_secureml(d, group, rng):
    w = rng.integers(-(1 << 20), 1 << 20, size=(M, d))
    r = RING.sample(rng, (d, 1))
    config = SecureMlConfig(ring=RING, m=M, n=d, o=1, group=group)
    return run_protocol(
        lambda ch: secureml_triplets_server(ch, w, config, seed=1),
        lambda ch: secureml_triplets_client(ch, r, config, seed=2),
        timeout_s=1200,
    )


@pytest.mark.parametrize("d", dims_for_table3())
@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
def test_table3_abnn2(benchmark, scheme_name, d, bench_group, bench_rng):
    result = benchmark.pedantic(
        lambda: _run_abnn2(scheme_name, d, bench_group, bench_rng), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "scheme": scheme_name,
            "d": d,
            "comm_MB": round(result.total_bytes / 2**20, 2),
            "LAN_s": round(LAN.estimate_s(result.wall_time_s, result.total_bytes, result.rounds), 3),
            "WAN_s": round(
                WAN_SECUREML.estimate_s(result.wall_time_s, result.total_bytes, result.rounds), 3
            ),
            "paper_d1000": PAPER_D1000.get(scheme_name),
        }
    )


@pytest.mark.parametrize("d", dims_for_table3())
def test_table3_secureml(benchmark, d, bench_group, bench_rng):
    result = benchmark.pedantic(lambda: _run_secureml(d, bench_group, bench_rng), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "d": d,
            "comm_MB": round(result.total_bytes / 2**20, 2),
            "LAN_s": round(LAN.estimate_s(result.wall_time_s, result.total_bytes, result.rounds), 3),
            "WAN_s": round(
                WAN_SECUREML.estimate_s(result.wall_time_s, result.total_bytes, result.rounds), 3
            ),
            "paper_d1000": PAPER_D1000["SecureML"],
        }
    )


def test_table3_shapes(bench_group, bench_rng):
    """The comparison ratios the paper reports, on live runs at d=100."""
    d = 100
    secureml = _run_secureml(d, bench_group, bench_rng)
    results = {name: _run_abnn2(name, d, bench_group, bench_rng) for name in SCHEME_NAMES}

    # Paper: comm ~25x / ~20x / ~4x below SecureML.
    ratio_binary = secureml.total_bytes / results["binary"].total_bytes
    ratio_ternary = secureml.total_bytes / results["ternary"].total_bytes
    ratio_8bit = secureml.total_bytes / results["8(2,2,2,2)"].total_bytes
    assert 10 < ratio_binary < 50
    assert 8 < ratio_ternary < 45
    assert 2 < ratio_8bit < 10

    # Projected WAN: ABNN2 binary/ternary at least ~8x faster.
    def wan(res):
        return WAN_SECUREML.estimate_s(res.wall_time_s, res.total_bytes, res.rounds)

    assert wan(secureml) / wan(results["binary"]) > 8
    assert wan(secureml) / wan(results["ternary"]) > 6
    assert wan(secureml) / wan(results["8(2,2,2,2)"]) > 1.5
