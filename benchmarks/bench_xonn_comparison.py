"""Extra comparison (not a paper table): XONN-style BNN vs ABNN2 binary.

The paper's related work positions XONN as the GC-only alternative for
binary networks.  This bench puts both on the same (reduced) task so the
structural difference shows up in the numbers:

* XONN: zero OT-based linear layers — one garbled circuit, a couple of
  rounds, comm = garbled tables (grows with *every* multiply);
* ABNN2: OT triplets offline (comm grows with weights x batch), tiny
  online GC only for the activations.

Reduced dims (196 -> 24 -> 10) keep the fully-garbled circuit tractable
in Python; the comparison is about shape, not absolute scale.
"""

import numpy as np
import pytest

from repro.baselines.xonn import binarize_network, xonn_predict
from repro.core.protocol import secure_predict
from repro.nn.data import synthetic_mnist
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.quantize import quantize_model
from repro.nn.train import TrainConfig, train_classifier
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring

MB = 1024 * 1024


@pytest.fixture(scope="module")
def reduced_task():
    data = synthetic_mnist(n_train=600, n_test=100, seed=13)
    # 14x14 average-downsampled inputs keep the garbled BNN tractable.
    def down(x):
        imgs = x.reshape(-1, 28, 28)
        return imgs.reshape(-1, 14, 2, 14, 2).mean(axis=(2, 4)).reshape(-1, 196)

    train_x, test_x = down(data.train_x), down(data.test_x)
    model = Sequential([Dense(196, 24, seed=4), ReLU(), Dense(24, 10, seed=5)])
    train_classifier(model, train_x, data.train_y, TrainConfig(epochs=6, seed=0))
    return model, train_x, test_x, data.test_y


def test_xonn_vs_abnn2_binary(benchmark, reduced_task, bench_group):
    model, _train_x, test_x, _test_y = reduced_task
    x = test_x[:2]

    def run():
        bnn = binarize_network(model)
        xonn = xonn_predict(bnn, x, group=bench_group, seed=1)
        qmodel = quantize_model(model, FragmentScheme.binary(), Ring(32), frac_bits=6)
        abnn2 = secure_predict(qmodel, x, group=bench_group, seed=2)
        return xonn, abnn2

    xonn, abnn2 = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "xonn_comm_MB": round(xonn.total_bytes / MB, 2),
            "xonn_rounds": xonn.rounds,
            "xonn_and_gates": xonn.and_gates,
            "abnn2_comm_MB": round(abnn2.total_bytes / MB, 2),
            "abnn2_rounds": abnn2.rounds,
        }
    )
    # Structural shape: XONN runs in a near-constant handful of rounds,
    # ABNN2 pays rounds per offline layer + activation layer.  (At this
    # tiny binary scale ABNN2's offline OT traffic no longer dominates
    # its online GC — the offline-dominance shape belongs to multi-bit
    # schemes and full-size nets; see bench_table2/4.)
    assert xonn.rounds < abnn2.rounds
