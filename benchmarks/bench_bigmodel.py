#!/usr/bin/env python
"""Memory-bounded streaming execution on ImageNet-class conv layers.

Two parts, one gate set:

* **Part A — equivalence + conformance.**  A VGG-style conv net
  (:func:`repro.nn.model.vgg_imagenet` at test-tractable side) runs the
  full two-party prediction once per chunking leg — unchunked, then
  ``Im2colSpec.chunk_cols`` in {1, 7, an exact divisor, > n_positions}
  on the im2col backend plus a winograd leg.  Chunking is a local
  execution strategy: every leg's ``logits_int`` must be byte-identical
  to the unchunked baseline, and the traced per-layer offline traffic
  must match the Table-1 closed forms with **zero slack**
  (:func:`repro.perf.report.check_conformance` empty).  The baseline
  leg's traced layer spans are projected onto the paper's LAN/WAN link
  profiles.

* **Part B — per-layer RSS ceilings.**  Every conv layer of the
  full-size network runs its server-side linear pass twice in a fresh
  child process (:func:`repro.exec.procpool.run_in_process`): once
  materializing the whole lowered patch matrix, once streaming it in
  ``CHUNK``-column blocks against a blocked ``U``
  (:class:`repro.core.triplets.BlockedShare`).  The child resets the
  kernel RSS high-water mark (:func:`repro.perf.trace.reset_peak_rss`)
  after building its inputs, so the reported delta is the transient
  working set of the pass alone.  Gate, for every layer whose
  closed-form unchunked working set
  (:func:`repro.perf.costmodel.linear_working_set_bytes`) provably
  exceeds the budget:

      chunked_delta  <=  budget  <  unchunked_delta

  where ``budget = output_bytes + chunked_working_set + SLACK``.  Both
  legs must also report the same sha256 over the output share bytes —
  the streaming path changes peak memory, never values.

Emits ``BENCH_bigmodel.json`` and exits non-zero on any gate failure.

Usage::

    PYTHONPATH=src python benchmarks/bench_bigmodel.py            # full
    PYTHONPATH=src python benchmarks/bench_bigmodel.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.matmul import SecureMatmulServer
from repro.core.protocol import secure_predict
from repro.core.triplets import BlockedShare, TripletConfig
from repro.crypto.group import MODP_TEST
from repro.exec.procpool import run_in_process
from repro.net.netsim import LAN, WAN_QUOTIENT, WAN_SECUREML
from repro.nn.lowering import Im2colSpec, column_blocks, lower_shares, lower_shares_block
from repro.nn.model import vgg_imagenet
from repro.nn.quantize import quantize_model, set_chunk_cols
from repro.perf.costmodel import linear_working_set_bytes, lowered_operand_bytes
from repro.perf.report import check_conformance, conformance_rows
from repro.perf.trace import iter_spans, peak_rss_bytes, reset_peak_rss
from repro.quant.fragments import TABLE2_SCHEMES, FragmentScheme
from repro.utils.ring import Ring

SEED = 20260808
TIMEOUT_S = 600.0
NETWORKS = (LAN, WAN_SECUREML, WAN_QUOTIENT)

#: Column-block width of the streamed legs (Part B) and the divisor leg
#: of Part A.  1024 columns keep the per-block working set a few MB for
#: every layer of the full-size network.
CHUNK = 1024
QUICK_CHUNK = 512

#: Allocator/interpreter headroom added to the closed-form chunked
#: working set when deriving each layer's RSS budget.  Children are
#: fresh processes running pure numpy, so the noise is small; the gate
#: only fires on layers whose unchunked form exceeds the budget by
#: ``GATE_MARGIN`` to keep it provable rather than borderline.
SLACK_BYTES = 8 * 1024 * 1024
QUICK_SLACK_BYTES = 4 * 1024 * 1024
GATE_MARGIN = 1.5


def make_workloads(quick: bool):
    """(equivalence geometry, per-layer geometry) for this mode.

    Part A runs a whole network end to end, so it uses a small side;
    Part B drives single layers and can afford the ImageNet-class map.
    """
    if quick:
        return dict(side=18, base=4, batch=2), dict(side=130, base=8, batch=2)
    return dict(side=34, base=4, batch=2), dict(side=226, base=16, batch=2)


def conv_geometry(side: int, base: int) -> list[dict]:
    """The three conv layers of :func:`vgg_imagenet` at this scale."""
    s1 = (side - 2) // 2
    s2 = (s1 - 2) // 2
    return [
        dict(name="conv1", c_in=3, c_out=base, side=side),
        dict(name="conv2", c_in=base, c_out=2 * base, side=s1),
        dict(name="conv3", c_in=2 * base, c_out=4 * base, side=s2),
    ]


# --------------------------------------------------------------------- #
# Part A: equivalence + conformance legs
# --------------------------------------------------------------------- #
def run_equivalence(geom: dict, quick: bool) -> tuple[dict, list[dict], bool]:
    scheme = TABLE2_SCHEMES["4(2,2)"]
    shape = (3, geom["side"], geom["side"])
    net = vgg_imagenet(seed=1, base=geom["base"], side=geom["side"])
    rng = np.random.default_rng(SEED)
    x = rng.random((geom["batch"], int(np.prod(shape))))

    base_im2col = quantize_model(
        net, scheme, Ring(32), frac_bits=5, input_shape=shape
    )
    base_wino = quantize_model(
        net, scheme, Ring(32), frac_bits=5, input_shape=shape,
        linear_backend="winograd",
    )
    n_pos = base_im2col.layers[0].conv.n_positions
    divisor = next(c for c in range(min(64, n_pos), 0, -1) if n_pos % c == 0)
    chunk_legs = [None, 7, divisor] if quick else [None, 1, 7, divisor, 10**6]

    legs = []
    for backend, model in (("im2col", base_im2col), ("winograd", base_wino)):
        for chunk in chunk_legs if backend == "im2col" else [None, 7]:
            legs.append((f"{backend}-chunk{chunk}", set_chunk_cols(model, chunk)))

    results = {}
    rows = []
    baseline = {}
    identical = True
    for name, model in legs:
        report = secure_predict(model, x, group=MODP_TEST, seed=SEED)
        failures = check_conformance(report.client_trace)
        backend = name.split("-")[0]
        if backend not in baseline:
            baseline[backend] = report.logits_int
        same = bool((report.logits_int == baseline[backend]).all())
        identical = identical and same and not failures
        rows.append(
            {
                "leg": name,
                "identical_logits": same,
                "conformance_failures": failures,
                "offline_bytes": report.offline_bytes,
                "online_bytes": report.online_bytes,
            }
        )
        print(
            f"  {name}: logits {'identical' if same else 'DIFFER'}, "
            f"conformance failures {len(failures)}"
        )
        results[name] = report

    # The two backends run different offline protocols (different dealt
    # material), so their logits legitimately differ by truncation noise
    # — equality is asserted within each backend family only.
    layer_rows = layer_comm_rows(results["im2col-chunkNone"].client_trace)
    return {"rows": rows, "divisor_chunk": divisor}, layer_rows, identical


def layer_comm_rows(trace: dict) -> list[dict]:
    """Measured vs predicted offline traffic per layer, with projections."""
    predicted = {
        row.path: row for row in conformance_rows(trace) if row.kind == "triplets"
    }
    rows = []
    for path, span in iter_spans(trace):
        row = predicted.get(path)
        if row is None:
            continue
        total = span["total"]
        nbytes = total["sent_bytes"] + total["recv_bytes"]
        rows.append(
            {
                "span": path,
                "measured_bytes": nbytes,
                "core_bytes": row.core_bits // 8,
                "predicted_bytes": (row.predicted_bits or 0) // 8,
                "conforms": row.ok,
                "projections_s": {
                    net.name: round(
                        net.estimate_s(span["duration_s"], nbytes, total["rounds"]), 4
                    )
                    for net in NETWORKS
                },
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Part B: per-layer RSS legs (child process workers)
# --------------------------------------------------------------------- #
def _layer_rss_worker(chan, payload):
    """Run one conv layer's server linear pass and report its RSS delta.

    Self-contained (the channel is never touched): builds the weights,
    activation share and banked ``U`` first, resets the kernel RSS
    high-water mark, then runs the pass — so the measured peak is the
    transient working set of lowering + matmul alone.
    """
    ring = Ring(payload["ring_bits"])
    spec = Im2colSpec(
        in_channels=payload["c_in"],
        height=payload["side"],
        width=payload["side"],
        kernel=3,
        stride=1,
    )
    batch = payload["batch"]
    chunk = payload["chunk_cols"]
    total = batch * spec.n_positions
    m = payload["c_out"]
    rng = np.random.default_rng(payload["seed"])
    w = ring.reduce(rng.integers(-3, 4, size=(m, spec.patch_len)))
    activation = ring.sample(rng, (spec.in_channels * spec.height * spec.width, batch))
    config = TripletConfig(
        ring=ring,
        scheme=FragmentScheme.ternary(),
        m=m,
        n=spec.patch_len,
        o=total,
        group=MODP_TEST,
    )
    engine = SecureMatmulServer(chan, w, config)
    # Both legs must consume the *same* U so their outputs are
    # byte-comparable; the chunked leg re-slices it into bank blocks
    # (all of this is pre-reset baseline, not measured working set).
    u_full = ring.sample(rng, (m, total))
    if chunk is None:
        engine.preload(u_full)
    else:
        engine.preload(
            BlockedShare(
                [
                    np.ascontiguousarray(u_full[:, lo:hi])
                    for lo, hi in column_blocks(total, chunk)
                ]
            )
        )
        del u_full

    supported = reset_peak_rss()
    rss_before = peak_rss_bytes()
    t0 = time.perf_counter()
    if chunk is None:
        out = engine.online(lower_shares(spec, activation))
    else:
        out = ring.zeros((m, total))
        for lo, hi in column_blocks(total, chunk):
            out[:, lo:hi] = engine.online_block(
                lower_shares_block(spec, activation, lo, hi), lo, hi
            )
    wall = time.perf_counter() - t0
    rss_peak = peak_rss_bytes()
    return {
        "wall_s": round(wall, 4),
        "rss_before_bytes": rss_before,
        "rss_peak_bytes": rss_peak,
        "rss_delta_bytes": rss_peak - rss_before,
        "reset_supported": supported,
        "checksum": hashlib.sha256(np.ascontiguousarray(out).tobytes()).hexdigest(),
    }


def run_memory_legs(geom: dict, chunk: int, slack: int) -> tuple[list[dict], list[str]]:
    failures: list[str] = []
    rows = []
    for layer in conv_geometry(geom["side"], geom["base"]):
        spec = Im2colSpec(layer["c_in"], layer["side"], layer["side"], 3, 1)
        total = geom["batch"] * spec.n_positions
        m = layer["c_out"]
        out_bytes = m * total * 8
        ws_chunked = linear_working_set_bytes(m, spec.patch_len, total, 1, chunk)
        ws_unchunked = linear_working_set_bytes(m, spec.patch_len, total, 1, None)
        budget = out_bytes + ws_chunked + slack
        gated = ws_unchunked >= GATE_MARGIN * budget

        legs = {}
        for leg_name, leg_chunk in (("unchunked", None), ("chunked", chunk)):
            payload = dict(
                ring_bits=32,
                c_in=layer["c_in"],
                c_out=m,
                side=layer["side"],
                batch=geom["batch"],
                chunk_cols=leg_chunk,
                seed=SEED + 9,
            )
            legs[leg_name] = run_in_process(_layer_rss_worker, payload)

        row = {
            "layer": layer["name"],
            "m": m,
            "n": spec.patch_len,
            "total_cols": total,
            "chunk_cols": chunk,
            "budget_bytes": budget,
            "gated": gated,
            "predicted": {
                "operand_bytes": lowered_operand_bytes(spec.patch_len, total),
                "working_set_unchunked_bytes": ws_unchunked,
                "working_set_chunked_bytes": ws_chunked,
                "output_bytes": out_bytes,
            },
            "legs": legs,
        }
        rows.append(row)
        mib = 1024 * 1024
        print(
            f"  {layer['name']}: unchunked delta "
            f"{legs['unchunked']['rss_delta_bytes'] / mib:.1f} MiB, chunked "
            f"{legs['chunked']['rss_delta_bytes'] / mib:.1f} MiB, budget "
            f"{budget / mib:.1f} MiB{' [gated]' if gated else ''}"
        )

        if legs["unchunked"]["checksum"] != legs["chunked"]["checksum"]:
            failures.append(f"{layer['name']}: chunked output differs from unchunked")
        if not legs["chunked"]["reset_supported"]:
            print(f"  {layer['name']}: no RSS reset support, skipping gate")
            continue
        if gated:
            if legs["chunked"]["rss_delta_bytes"] > budget:
                failures.append(
                    f"{layer['name']}: chunked RSS delta "
                    f"{legs['chunked']['rss_delta_bytes']} exceeds budget {budget}"
                )
            if legs["unchunked"]["rss_delta_bytes"] <= budget:
                failures.append(
                    f"{layer['name']}: unchunked RSS delta "
                    f"{legs['unchunked']['rss_delta_bytes']} not above budget {budget}"
                )
    return rows, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI workload")
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_bigmodel.json"), help="JSON output path"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="write JSON but skip the gates"
    )
    args = parser.parse_args()

    equiv_geom, layer_geom = make_workloads(args.quick)
    chunk = QUICK_CHUNK if args.quick else CHUNK
    slack = QUICK_SLACK_BYTES if args.quick else SLACK_BYTES

    print(
        f"part A: vgg_imagenet side={equiv_geom['side']} base={equiv_geom['base']} "
        f"batch={equiv_geom['batch']} (two-party, per-chunk legs)"
    )
    equivalence, layer_comm, identical = run_equivalence(equiv_geom, args.quick)

    print(
        f"part B: per-layer RSS at side={layer_geom['side']} "
        f"base={layer_geom['base']} batch={layer_geom['batch']}, chunk={chunk}"
    )
    memory_rows, memory_failures = run_memory_legs(layer_geom, chunk, slack)

    result = {
        "bench": "bigmodel_streaming",
        "quick": args.quick,
        "seed": SEED,
        "equivalence_workload": equiv_geom,
        "memory_workload": layer_geom,
        "equivalence": equivalence,
        "layer_comm": layer_comm,
        "memory": {
            "chunk_cols": chunk,
            "slack_bytes": slack,
            "gate_margin": GATE_MARGIN,
            "rows": memory_rows,
        },
        "gates": {
            "identical_logits_and_conformance": identical,
            "memory_failures": memory_failures,
        },
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.no_assert:
        return 0
    ok = True
    if not identical:
        print("GATE FAIL: equivalence/conformance legs", file=sys.stderr)
        ok = False
    for failure in memory_failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
        ok = False
    if ok:
        print("all gates passed")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
