"""Shared benchmark fixtures.

Every benchmark runs the *real* protocols in-process and reports, next to
the raw Python wall time, the projected LAN/WAN times from measured
traffic and round counts (see ``repro.perf.timing``).  Dimensions default
to the paper's; batch sweeps are trimmed unless ``REPRO_BENCH_FULL=1``
because a batch-128 offline phase moves ~1 GB through the in-memory
channel.

The base OTs use the 256-bit test group: they are a fixed O(kappa) setup
cost that both the paper and Table 1 ignore, and the group choice does
not affect the reported extension traffic.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.crypto.group import MODP_TEST
from repro.nn.data import synthetic_mnist
from repro.nn.model import mnist_mlp
from repro.nn.quantize import quantize_model
from repro.nn.train import TrainConfig, train_classifier
from repro.quant.fragments import TABLE2_SCHEMES
from repro.utils.ring import Ring

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: The Figure-4 network's (out, in) layer shapes.
FIG4_LAYERS = [(128, 784), (128, 128), (10, 128)]


def batches_for_table2() -> list[int]:
    return [1, 32, 64, 128] if FULL else [1, 8]


def dims_for_table3() -> list[int]:
    return [100, 500, 1000] if FULL else [100, 250]


def batches_for_table45() -> list[int]:
    return [1, 128] if FULL else [1, 8]


@pytest.fixture(scope="session")
def bench_group():
    return MODP_TEST


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(2022)


@pytest.fixture(scope="session")
def fig4_dataset():
    return synthetic_mnist(n_train=1200, n_test=200, seed=7)


@pytest.fixture(scope="session")
def fig4_model(fig4_dataset):
    """The paper's 784-128-128-10 MLP, trained."""
    model = mnist_mlp(seed=3)
    train_classifier(
        model, fig4_dataset.train_x, fig4_dataset.train_y, TrainConfig(epochs=5, seed=0)
    )
    return model


@pytest.fixture(scope="session")
def quantized_fig4(fig4_model):
    """Figure-4 model quantized under every Table 4 scheme, ring l=32."""
    ring = Ring(32)
    return {
        name: quantize_model(fig4_model, TABLE2_SCHEMES[name], ring, frac_bits=6)
        for name in ("binary", "ternary", "3(2,1)", "4(2,2)")
    }


def random_weights(scheme, shape, rng):
    lo, hi = scheme.weight_range
    return rng.integers(lo, hi + 1, size=shape)
