"""Ablations for the design choices DESIGN.md calls out.

Not a paper table — these isolate the paper's individual optimizations:

1. **one-batch C-OT trick** (Section 4.1.3) vs running the multi-batch
   protocol at o = 1;
2. **multi-batch OT reuse** (Section 4.1.2) vs repeating the one-batch
   protocol o times;
3. **optimized ReLU** (Section 4.2) vs the oblivious Algorithm-2 ReLU;
4. **fragment radix sweep** at fixed eta (the (N, gamma) trade-off).
"""

import numpy as np
import pytest

from conftest import random_weights
from repro.core.params import enumerate_costs
from repro.core.protocol import secure_predict
from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.net import run_protocol
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring

RING = Ring(32)
MB = 1024 * 1024


def _triplets(scheme, m, n, o, mode, group, rng):
    w = random_weights(scheme, (m, n), rng)
    r = RING.sample(rng, (n, o))
    config = TripletConfig(ring=RING, scheme=scheme, m=m, n=n, o=o, mode=mode, group=group)
    return run_protocol(
        lambda ch: generate_triplets_server(ch, w, config, seed=1),
        lambda ch: generate_triplets_client(ch, r, config, np.random.default_rng(2), seed=3),
        timeout_s=1200,
    )


def test_ablation_one_batch_trick(benchmark, bench_group, bench_rng):
    """Section 4.1.3: N-1 messages instead of N at o = 1."""
    scheme = FragmentScheme.from_bits((2, 2))
    m, n = 64, 128

    def run():
        one = _triplets(scheme, m, n, 1, "one", bench_group, bench_rng)
        multi = _triplets(scheme, m, n, 1, "multi", bench_group, bench_rng)
        return one, multi

    one, multi = benchmark.pedantic(run, rounds=1, iterations=1)
    saving = 1 - one.total_bytes / multi.total_bytes
    benchmark.extra_info.update(
        {
            "one_batch_MB": round(one.total_bytes / MB, 3),
            "multi_at_o1_MB": round(multi.total_bytes / MB, 3),
            "saving": round(saving, 3),
        }
    )
    # Model: (l*(N-1) + 2k) vs (l*N + 2k) per OT -> ~8% for N=4, l=32.
    assert one.total_bytes < multi.total_bytes


def test_ablation_multi_batch_reuse(benchmark, bench_group, bench_rng):
    """Section 4.1.2: one OT carrying o products vs o separate runs."""
    scheme = FragmentScheme.from_bits((2, 2))
    m, n, o = 32, 64, 8

    def run():
        multi = _triplets(scheme, m, n, o, "multi", bench_group, bench_rng)
        singles_bytes = sum(
            _triplets(scheme, m, n, 1, "one", bench_group, bench_rng).total_bytes
            for _ in range(o)
        )
        return multi, singles_bytes

    multi, singles_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "multi_batch_MB": round(multi.total_bytes / MB, 3),
            "repeated_one_batch_MB": round(singles_bytes / MB, 3),
        }
    )
    # Reuse shares the 2k-bit OT-extension overhead across the batch.
    assert multi.total_bytes < singles_bytes


def test_ablation_relu_variant(benchmark, quantized_fig4, fig4_dataset, bench_group):
    """Section 4.2's optimized ReLU vs the oblivious Algorithm 2."""
    qmodel = quantized_fig4["ternary"]
    x = fig4_dataset.test_x[:2]

    def run():
        oblivious = secure_predict(
            qmodel, x, relu_variant="oblivious", group=bench_group, timeout_s=2400
        )
        optimized = secure_predict(
            qmodel, x, relu_variant="optimized", group=bench_group, timeout_s=2400
        )
        return oblivious, optimized

    oblivious, optimized = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "oblivious_online_MB": round(oblivious.online_bytes / MB, 3),
            "optimized_online_MB": round(optimized.online_bytes / MB, 3),
        }
    )
    assert (optimized.predictions == oblivious.predictions).all()
    # With trained ReLU layers a large fraction of neurons are negative,
    # so the optimized variant must transmit less during the online phase.
    assert optimized.online_bytes < oblivious.online_bytes


def test_ablation_winograd_conv(benchmark, bench_group):
    """im2col vs winograd F(2x2,3x3) conv backend: byte-identical logits
    at a >= 2x reduction in triplet elements (2.25x at stride 1)."""
    from repro.core.protocol import ModelMeta, layer_triplet_config
    from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
    from repro.nn.model import Sequential
    from repro.nn.quantize import quantize_model
    from repro.perf.costmodel import (
        conv_triplet_elements_im2col,
        conv_triplet_elements_winograd,
    )

    net = Sequential(
        [
            Conv2d(1, 2, kernel_size=3, seed=0),
            ReLU(),
            Flatten(),
            Dense(2 * 6 * 6, 4, seed=1),
        ]
    )
    scheme = FragmentScheme.ternary()
    x = np.random.default_rng(21).uniform(0, 1, size=(2, 64))
    quantized = {
        backend: quantize_model(
            net, scheme, RING, frac_bits=6,
            input_shape=(1, 8, 8), linear_backend=backend,
        )
        for backend in ("im2col", "winograd")
    }

    def run():
        return {
            backend: secure_predict(qm, x, group=bench_group, seed=5, timeout_s=2400)
            for backend, qm in quantized.items()
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    # ternary truncates 0 bits, so both backends are exact: byte-identical
    assert (reports["im2col"].logits_int == reports["winograd"].logits_int).all()
    # triplet elements actually drawn by each backend's conv layer
    batch = x.shape[0]
    elements = {}
    for backend, qm in quantized.items():
        meta = ModelMeta.from_model(qm).layers[0]
        config = layer_triplet_config(RING, meta, batch)
        elements[backend] = config.rows * config.n * config.o
    conv = ModelMeta.from_model(quantized["im2col"]).layers[0].conv
    wino = ModelMeta.from_model(quantized["winograd"]).layers[0].wino
    assert elements["im2col"] == conv_triplet_elements_im2col(
        conv.in_channels, 2, conv.out_h, conv.out_w, batch
    )
    assert elements["winograd"] == conv_triplet_elements_winograd(
        wino.in_channels, 2, wino.n_tiles, batch
    )
    ratio = elements["im2col"] / elements["winograd"]
    benchmark.extra_info.update(
        {
            "im2col_offline_MB": round(reports["im2col"].offline_bytes / MB, 3),
            "winograd_offline_MB": round(reports["winograd"].offline_bytes / MB, 3),
            "im2col_triplet_elements": elements["im2col"],
            "winograd_triplet_elements": elements["winograd"],
            "element_ratio": round(ratio, 3),
        }
    )
    # the acceptance gate: >= 2x fewer triplet elements (2.25x here)
    assert ratio >= 2.0
    assert ratio == 2.25


@pytest.mark.parametrize("eta", [4, 8])
def test_ablation_fragment_radix(benchmark, eta, bench_group, bench_rng):
    """The (N, gamma) sweep: measured traffic tracks the analytic table."""
    m, n = 32, 64
    rows = enumerate_costs(eta, ring_bits=32, batch=1)
    candidates = [tuple(r["bit_widths"]) for r in rows[:2] + rows[-1:]]

    def run():
        measured = {}
        for widths in candidates:
            scheme = FragmentScheme.from_bits(widths)
            measured[widths] = _triplets(
                scheme, m, n, 1, "one", bench_group, bench_rng
            ).total_bytes
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({str(k): v for k, v in measured.items()})
    # The analytically-best composition must also measure best.
    best, second, worst = candidates
    assert measured[best] <= measured[second] <= measured[worst]
