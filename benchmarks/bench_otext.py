#!/usr/bin/env python
"""OT-extension engine microbenchmark: seed per-column loop vs word-packed.

Measures raw ``_extend`` throughput (the batched PRG expansion, the U/Q/T
matrix XORs, the bit-matrix transpose, and the wire codec — everything
except random-oracle masking) for both the vectorized engines and the
seed per-column reference preserved in
:mod:`repro.crypto.otext_reference`.  Both engines are byte-identical on
the wire (see ``tests/test_otext_transcripts.py``), so the comparison is
apples to apples: same transcripts, same traffic, different compute.

Emits ``BENCH_otext.json`` via the :class:`repro.perf.timing.BenchRow`
machinery so later PRs have a recorded perf trajectory to regress
against, and exits non-zero if the vectorized path falls below the
recorded speedup/throughput floors (the CI smoke).

Usage::

    PYTHONPATH=src python benchmarks/bench_otext.py            # full (m = 2^16)
    PYTHONPATH=src python benchmarks/bench_otext.py --quick    # CI smoke (m = 2^13)
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.crypto.group import MODP_TEST
from repro.crypto.iknp import OtExtReceiver, OtExtSender
from repro.crypto.kk13 import Kk13Receiver, Kk13Sender
from repro.crypto.otext_reference import (
    ReferenceKk13Receiver,
    ReferenceKk13Sender,
    ReferenceOtExtReceiver,
    ReferenceOtExtSender,
)
from repro.net.channel import make_channel_pair
from repro.net.netsim import LAN
from repro.perf.timing import BenchRow, format_table
from repro.perf.trace import Tracer

N_VALUES = 4  # the paper's workhorse radix (Table 2's (2,2,...) schemes)

#: Regression floors.  The full-size speedup floor is the hard
#: acceptance bar; quick mode (small batches, per-call overhead weighs
#: more, noisier ratio) gates at a reduced floor.  The absolute floor is
#: deliberately ~10x below the dev-box measurement so slow CI runners do
#: not flap.
SPEEDUP_FLOOR = 5.0
QUICK_SPEEDUP_FLOOR = 2.5
VECTORIZED_KK13_OTS_PER_S_FLOOR = 100_000.0

#: Ceiling on the relative cost of running the same workload with a
#: :class:`repro.perf.trace.Tracer` attached to both channel endpoints.
#: Quick mode gates laxer: with small batches the fixed per-message hook
#: cost weighs disproportionately and the ratio is noisy.
TRACE_OVERHEAD_CEIL = 0.05
QUICK_TRACE_OVERHEAD_CEIL = 0.25


def _setup_sessions(sender_cls, receiver_cls, kind: str, seed: int):
    """Build a connected session pair and run base-OT setup + warm-up.

    Setup interleaves base-OT messages, so it runs on two threads; the
    timed extension batches afterwards are strictly sender-after-receiver
    and run single-threaded for deterministic measurement.
    """
    server_ch, client_ch = make_channel_pair(timeout_s=600)
    if kind == "kk13":
        sender = sender_cls(server_ch, N_VALUES, group=MODP_TEST, seed=seed)
        receiver = receiver_cls(client_ch, N_VALUES, group=MODP_TEST, seed=seed + 1)
    else:
        sender = sender_cls(server_ch, group=MODP_TEST, seed=seed)
        receiver = receiver_cls(client_ch, group=MODP_TEST, seed=seed + 1)
    warm = 256
    warm_choices = np.zeros(warm, dtype=np.int64)
    errors = []

    def _recv_side():
        try:
            receiver._extend(warm_choices)
        except Exception as exc:  # pragma: no cover - setup failure
            errors.append(exc)

    thread = threading.Thread(target=_recv_side)
    thread.start()
    sender._extend(warm)
    thread.join()
    if errors:
        raise errors[0]
    return sender, receiver


def _time_engine(sender_cls, receiver_cls, kind: str, m: int, reps: int, seed: int):
    """Total compute seconds (both sides) for ``reps`` extension batches."""
    sender, receiver = _setup_sessions(sender_cls, receiver_cls, kind, seed)
    stats = sender.chan.stats if hasattr(sender.chan, "stats") else None
    rng = np.random.default_rng(seed)
    choices = rng.integers(0, N_VALUES if kind == "kk13" else 2, size=m)
    # One untimed full-size rep absorbs cold caches/allocator effects.
    receiver._extend(choices)
    sender._extend(m)
    before = stats.snapshot() if stats else None
    rep_times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        receiver._extend(choices)
        sender._extend(m)
        rep_times.append(time.perf_counter() - t0)
    payload = rounds = 0
    if stats:
        after = stats.snapshot()
        payload = after.total_bytes - before.total_bytes
        rounds = after.rounds - before.rounds
    return rep_times, payload, rounds


def run_trace_overhead(m: int, reps: int) -> dict:
    """Tracer cost on the vectorized KK13 hot path: traced vs untraced.

    Same single-threaded extension loop as the engine benchmark; the
    traced variant attaches one tracer per endpoint so every message
    passes through ``Tracer.record_io`` and every ``_extend`` call opens
    its ``extension`` span via ``channel_span``.

    Both variants are summarized by the **median** of their reps (min is
    a one-sided estimator: a single lucky untraced rep or unlucky traced
    rep skews the ratio), and the overhead fraction is clamped at zero —
    the tracer cannot make the loop faster, so a negative ratio is pure
    scheduler noise and must not feed the regression gate.
    """
    med = {}
    for label, traced in (("untraced", False), ("traced", True)):
        sender, receiver = _setup_sessions(Kk13Sender, Kk13Receiver, "kk13", seed=29)
        if traced:
            sender.chan.tracer = Tracer("server")
            receiver.chan.tracer = Tracer("client")
        rng = np.random.default_rng(29)
        choices = rng.integers(0, N_VALUES, size=m)
        receiver._extend(choices)  # warm-up rep, untimed
        sender._extend(m)
        rep_times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            receiver._extend(choices)
            sender._extend(m)
            rep_times.append(time.perf_counter() - t0)
        med[label] = float(np.median(rep_times))
    overhead = max(0.0, med["traced"] / med["untraced"] - 1.0)
    return {
        "m": m,
        "reps": reps,
        "untraced_median_s": round(med["untraced"], 4),
        "traced_median_s": round(med["traced"], 4),
        "overhead_frac": round(overhead, 4),
    }


def run_bench(m: int, reps: int) -> dict:
    engines = [
        ("kk13", "seed-loop", ReferenceKk13Sender, ReferenceKk13Receiver),
        ("kk13", "vectorized", Kk13Sender, Kk13Receiver),
        ("iknp", "seed-loop", ReferenceOtExtSender, ReferenceOtExtReceiver),
        ("iknp", "vectorized", OtExtSender, OtExtReceiver),
    ]
    rows = []
    throughput: dict[tuple[str, str], float] = {}
    for kind, label, sender_cls, receiver_cls in engines:
        rep_times, payload, rounds = _time_engine(
            sender_cls, receiver_cls, kind, m, reps, seed=17
        )
        # min-of-reps: the standard noise-robust estimate of true cost.
        best = min(rep_times)
        ots_per_s = m / best if best else float("inf")
        throughput[(kind, label)] = ots_per_s
        rows.append(
            BenchRow(
                label=f"{kind}/{label}",
                compute_s=sum(rep_times),
                payload_bytes=payload,
                rounds=rounds,
                extras={
                    "m": m,
                    "reps": reps,
                    "N": N_VALUES if kind == "kk13" else 2,
                    "best_rep_s": round(best, 4),
                    "ots_per_s": round(ots_per_s),
                },
            )
        )
    speedups = {
        kind: throughput[(kind, "vectorized")] / throughput[(kind, "seed-loop")]
        for kind in ("kk13", "iknp")
    }
    return {
        "workload": {"m": m, "reps": reps, "n_values": N_VALUES, "group": "MODP_TEST"},
        "rows": [row.as_dict([LAN]) for row in rows],
        "speedup": {k: round(v, 2) for k, v in speedups.items()},
        "floors": {
            "speedup_kk13": SPEEDUP_FLOOR,
            "vectorized_kk13_ots_per_s": VECTORIZED_KK13_OTS_PER_S_FLOOR,
        },
        "_rows_obj": rows,
        "_throughput": throughput,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small batch for CI smoke (m = 2^13)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_otext.json",
        help="where to write the JSON baseline",
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="emit numbers without gating"
    )
    args = parser.parse_args(argv)
    m, reps = (1 << 13, 3) if args.quick else (1 << 16, 3)
    speedup_floor = QUICK_SPEEDUP_FLOOR if args.quick else SPEEDUP_FLOOR

    result = run_bench(m, reps)
    rows = result.pop("_rows_obj")
    throughput = result.pop("_throughput")
    print(format_table(rows, [LAN], title=f"OT-extension engines (m={m}, reps={reps})"))
    print(f"speedup: kk13 {result['speedup']['kk13']}x, iknp {result['speedup']['iknp']}x")

    overhead_ceil = QUICK_TRACE_OVERHEAD_CEIL if args.quick else TRACE_OVERHEAD_CEIL
    overhead = run_trace_overhead(m, reps=5)
    result["trace_overhead"] = overhead
    result["floors"]["trace_overhead_ceil"] = overhead_ceil
    print(
        f"tracer overhead (vectorized kk13): {100 * overhead['overhead_frac']:.1f}% "
        f"({overhead['untraced_median_s']}s -> {overhead['traced_median_s']}s per rep)"
    )

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.no_assert:
        return 0
    failures = []
    if result["speedup"]["kk13"] < speedup_floor:
        failures.append(
            f"KK13 speedup {result['speedup']['kk13']}x below floor {speedup_floor}x"
        )
    if throughput[("kk13", "vectorized")] < VECTORIZED_KK13_OTS_PER_S_FLOOR:
        failures.append(
            f"vectorized KK13 throughput {throughput[('kk13', 'vectorized')]:.0f} OT/s "
            f"below floor {VECTORIZED_KK13_OTS_PER_S_FLOOR:.0f}"
        )
    if overhead["overhead_frac"] > overhead_ceil:
        failures.append(
            f"tracer overhead {100 * overhead['overhead_frac']:.1f}% above "
            f"ceiling {100 * overhead_ceil:.0f}%"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
