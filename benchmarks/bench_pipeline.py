#!/usr/bin/env python
"""Pipelined online-phase benchmark: streamed garbling over a shaped link.

Measures the online wall-clock of one prediction batch on a deep FC
MLP (6 ReLU layers) across three execution rows — the sequential executor, the
layer-pipelined executor with unbounded table blocks, and the pipelined
executor with bounded chunks (``--gc-stream-chunk`` semantics) — over
one *calibrated* latency-dominated shaped link
(:mod:`repro.net.netsim`), and pins the properties the planner promises:

* **online speedup** — the sequential executor pays, per ReLU layer,
  the garbling compute and the garbled-table serialization on its
  critical path *between* the label OT of the previous layer and the
  evaluation of this one.  The pipelined executor garbles every layer
  up front on the client worker and streams the tables over per-layer
  mux streams while earlier layers' online rounds are in flight,
  leaving only the per-layer label-OT ping-pong serial.  The chunked
  row is the headline: bounded blocks interleave with the OT messages
  on the shared link direction (one huge block would park the OT
  ciphertexts behind it in the serialization queue), and the default
  flow-control window spans a full layer of chunks so the stream never
  stalls on lazy acks.  Gate: >= 1.3x over sequential on the full
  workload (measured ~1.5x).
* **equivalence** — the logit shares of every row must be byte-identical
  to each other and to the plaintext integer reference (pipelining is a
  local execution strategy, not a protocol change).
* **O(chunk) residency** — the chunked row must report a peak streamed
  table block of exactly ``table_block_bytes(chunk, n_inst)``.

The link is calibrated from a dry (unshaped) sequential online round:
bandwidth is sized so the transfer time is ``B = B_FRAC * C_dry`` and
RTT so total propagation is ``R = R_FRAC * C_dry`` (R_FRAC > 1: the
online phase is a hop-dominated ping-pong, the regime Table 1's online
column targets).  Offline material is generated once, unshaped, and
banked into every row via ``export_offline_round``/``load_offline_round``
— the rows time *online only*, after a warm-up round amortizes the
GC-session base OTs.

Emits ``BENCH_pipeline.json`` and exits non-zero if the measured
speedup falls below the recorded floor or any equivalence check fails
(the CI smoke).

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py            # full
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.pipeline import PipelineConfig
from repro.core.protocol import Abnn2Client, Abnn2Server, ModelMeta
from repro.crypto.group import MODP_TEST
from repro.gc.stream import table_block_bytes
from repro.net.channel import make_channel_pair
from repro.net.netsim import NetworkModel, shaped_channel_pair
from repro.net.runner import run_protocol
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.quantize import quantize_model
from repro.perf.trace import iter_spans
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring

#: Regression floors on online speedup (pipelined chunked vs sequential).
#: The quick workload has a shorter pipeline (smaller layers, so compute
#: is a larger fraction of each round) and gates at a reduced floor.
SPEEDUP_FLOOR = 1.3
QUICK_SPEEDUP_FLOOR = 1.15

#: Link calibration, as fractions of the dry sequential online time
#: C_dry: transfer time B = B_FRAC * C_dry (bandwidth = bytes / B),
#: total propagation R = R_FRAC * C_dry (rtt = 2 * R * C_dry / msgs).
#: The regime is transfer-heavy with real per-hop latency: the shaped
#: link pipelines propagation within a direction, so what the pipeline
#: can hide is exactly the per-layer serialization + garbling slack —
#: B_FRAC sizes that at a comparable order to compute, and R_FRAC keeps
#: the OT ping-pong (the part that *must* stay serial in both modes)
#: honest.  Swept empirically: pushing R_FRAC higher dilutes the gate
#: because both executors pay the same OT round trips.
B_FRAC = 0.8
R_FRAC = 1.0

CHUNK = 16
SEED = 20260808
TIMEOUT_S = 600.0


#: Hidden (ReLU) layers in the benchmark MLP.  The per-layer saving of
#: the pipeline is the garbled-table transfer + its delivery hop; the
#: label-OT round trip stays serial in both modes, so depth amplifies
#: exactly the part pipelining hides.
RELU_LAYERS = 6


def make_workload(quick: bool):
    """A deep FC MLP (ternary, Ring(32) => bit-exact logits)."""
    if quick:
        input_dim, hidden, classes, batch = 16, 20, 8, 2
    else:
        input_dim, hidden, classes, batch = 32, 40, 10, 4
    layers = [Dense(input_dim, hidden, seed=11), ReLU()]
    for i in range(RELU_LAYERS - 1):
        layers += [Dense(hidden, hidden, seed=12 + i), ReLU()]
    layers.append(Dense(hidden, classes, seed=12 + RELU_LAYERS))
    model = Sequential(layers)
    qmodel = quantize_model(model, FragmentScheme.ternary(), Ring(32), frac_bits=6)
    rng = np.random.default_rng(SEED)
    x = rng.normal(size=(batch, input_dim))
    return qmodel, x, dict(
        input_dim=input_dim, hidden=hidden, classes=classes, batch=batch
    )


def bank_material(qmodel, meta, batch, rounds=2):
    """Offline material for ``rounds`` online runs, generated unshaped.

    Every row loads the *same* exported rounds, so the logit shares are
    comparable byte-for-byte across rows.
    """

    def server_fn(chan):
        server = Abnn2Server(chan, qmodel, batch, group=MODP_TEST, seed=SEED + 1)
        server.offline(rounds=rounds)
        return [server.export_offline_round() for _ in range(rounds)]

    def client_fn(chan):
        client = Abnn2Client(chan, meta, batch, group=MODP_TEST, seed=SEED + 2)
        client.offline(rounds=rounds)
        return [client.export_offline_round() for _ in range(rounds)]

    result = run_protocol(server_fn, client_fn, timeout_s=TIMEOUT_S)
    return result.server, result.client


def run_row(qmodel, meta, x, material, pipeline, channels):
    """Warm-up online round, then one timed round on a joint barrier.

    Returns (wall_s, logits, timed_stats_delta, server_trace).
    """
    server_rounds, client_rounds = material
    batch = x.shape[0]
    x_ring = qmodel.encoder.encode(x.T)
    server_chan, client_chan = channels
    ready = threading.Barrier(3)
    go = threading.Barrier(3)
    out: dict = {}
    errors: list[BaseException] = []

    def server_fn():
        try:
            server = Abnn2Server(
                server_chan, qmodel, batch, group=MODP_TEST, seed=SEED + 1,
                pipeline=pipeline,
            )
            for rnd in server_rounds:
                server.load_offline_round(rnd)
            server.online()  # warm-up: amortizes GC-session base OTs
            ready.wait()
            go.wait()
            server.online()
            out["server_trace"] = server.tracer.to_dict()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)
            for barrier in (ready, go):
                barrier.abort()

    def client_fn():
        try:
            client = Abnn2Client(
                client_chan, meta, batch, group=MODP_TEST, seed=SEED + 2,
                pipeline=pipeline,
            )
            for rnd in client_rounds:
                client.load_offline_round(rnd)
            client.online(x_ring)
            ready.wait()
            go.wait()
            out["logits"] = client.online(x_ring)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)
            for barrier in (ready, go):
                barrier.abort()

    threads = [
        threading.Thread(target=server_fn, name="bench-server", daemon=True),
        threading.Thread(target=client_fn, name="bench-client", daemon=True),
    ]
    for t in threads:
        t.start()
    ready.wait()
    before = server_chan.stats.snapshot()
    go.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join(timeout=TIMEOUT_S)
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    if any(t.is_alive() for t in threads):
        raise TimeoutError("benchmark party did not finish")
    after = server_chan.stats.snapshot()
    delta = {
        "bytes": after.total_bytes - before.total_bytes,
        "messages": after.total_messages - before.total_messages,
    }
    return wall, out["logits"], delta, out["server_trace"]


def peak_stream_table_bytes(trace) -> int | None:
    """Largest streamed table block any ReLU span reports, or None."""
    peaks = [
        span["attrs"]["peak_table_bytes"]
        for _path, span in iter_spans(trace)
        if span["name"] == "relu" and "peak_table_bytes" in span.get("attrs", {})
    ]
    return max(peaks) if peaks else None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI workload")
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_pipeline.json"), help="JSON output path"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="write JSON but skip the floor gate"
    )
    args = parser.parse_args()

    qmodel, x, dims = make_workload(args.quick)
    floor = QUICK_SPEEDUP_FLOOR if args.quick else SPEEDUP_FLOOR
    meta = ModelMeta.from_model(qmodel)
    batch = dims["batch"]
    n_inst = dims["hidden"] * batch
    expected = qmodel.forward_int(qmodel.encoder.encode(x.T))

    print(
        f"workload: {dims['input_dim']}-{dims['hidden']}x{RELU_LAYERS}-"
        f"{dims['classes']} MLP ({RELU_LAYERS} ReLU layers), batch={batch}, "
        f"ternary, l=32"
    )
    material = bank_material(qmodel, meta, batch, rounds=2)

    # Dry sequential run: the link is calibrated against this CPU.
    dry_wall, dry_logits, dry_delta, _trace = run_row(
        qmodel, meta, x, material, None, make_channel_pair(timeout_s=TIMEOUT_S)
    )
    if not (dry_logits == expected).all():
        print("REGRESSION: dry-run logits do not match plaintext", file=sys.stderr)
        return 1
    bandwidth = dry_delta["bytes"] / (B_FRAC * dry_wall)
    rtt = 2.0 * R_FRAC * dry_wall / dry_delta["messages"]
    model = NetworkModel("calibrated", bandwidth_bytes_per_s=bandwidth, rtt_s=rtt)
    calibration = {
        "dry_wall_s": round(dry_wall, 4),
        "online_payload_bytes": dry_delta["bytes"],
        "online_messages": dry_delta["messages"],
        "b_frac": B_FRAC,
        "r_frac": R_FRAC,
    }
    print(
        f"calibrated link: {bandwidth / 1e6:.2f} MB/s, rtt {rtt * 1e3:.2f} ms "
        f"(dry online {dry_wall:.4f}s, {dry_delta['bytes']} B, "
        f"{dry_delta['messages']} msgs)"
    )

    grid = [
        ("sequential", None),
        ("pipelined", PipelineConfig()),
        (f"pipelined-chunk{CHUNK}", PipelineConfig(chunk=CHUNK)),
    ]
    rows = []
    walls: dict[str, float] = {}
    identical = True
    chunked_peak = None
    for name, pipeline in grid:
        channels = shaped_channel_pair(model, timeout_s=TIMEOUT_S)
        wall, logits, _delta, trace = run_row(
            qmodel, meta, x, material, pipeline, channels
        )
        walls[name] = wall
        if not (logits == dry_logits).all():
            identical = False
        peak = peak_stream_table_bytes(trace)
        if name.endswith(f"chunk{CHUNK}"):
            chunked_peak = peak
        row = {
            "row": name,
            "wall_s": round(wall, 4),
            "speedup": round(walls["sequential"] / wall, 3),
            "peak_table_bytes": peak,
        }
        rows.append(row)
        print(
            f"{name}: online wall {row['wall_s']}s, speedup {row['speedup']}x"
            + (f", peak table block {peak} B" if peak is not None else "")
        )

    speedup = round(walls["sequential"] / walls[f"pipelined-chunk{CHUNK}"], 3)
    expected_peak = table_block_bytes(CHUNK, n_inst)
    result = {
        "bench": "pipeline_online",
        "quick": args.quick,
        "workload": {**dims, "relu_layers": RELU_LAYERS, "ring_bits": 32, "seed": SEED},
        "link": {
            "bandwidth_bytes_per_s": round(bandwidth, 1),
            "rtt_s": round(rtt, 6),
            "calibration": calibration,
        },
        "rows": rows,
        "speedup_chunked": speedup,
        "identical_logits": identical,
        "chunk": CHUNK,
        "peak_table_bytes": {"measured": chunked_peak, "expected": expected_peak},
        "floors": {"speedup": floor},
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.no_assert:
        return 0
    failures = []
    if speedup < floor:
        failures.append(
            f"pipelined online speedup {speedup}x below floor {floor}x"
        )
    if not identical:
        failures.append("logit shares differ across rows (equivalence broken)")
    if chunked_peak != expected_peak:
        failures.append(
            f"chunked peak table block {chunked_peak} B != "
            f"table_block_bytes({CHUNK}, {n_inst}) = {expected_peak} B"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
