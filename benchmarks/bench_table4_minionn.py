"""Table 4 — end-to-end prediction: ABNN2 vs MiniONN.

Paper setting: Fig-4 network, batch {1, 128}, rings Z_{2^32} and
Z_{2^64}, QUOTIENT's WAN (24.3 MB/s, 40 ms); MiniONN run from the
authors' code.  Here both systems run live: ABNN2 with schemes
{binary, ternary, 3(2,1), 4(2,2)}, MiniONN as the Paillier+packing
re-implementation (512-bit keys so pure Python finishes; ciphertext
traffic is additionally scaled to 2048-bit-key sizes, and the
paper-anchored traffic model is reported beside the measurement —
see repro/baselines/minionn.py for why measured Paillier traffic
undercounts MiniONN's SEAL figures).

Shapes that must reproduce (asserted):

* ABNN2's compute time beats MiniONN's HE-heavy offline phase, and the
  gap grows with the batch size;
* smaller weight bitwidth => faster and leaner ABNN2 rows.
"""

import pytest

from conftest import batches_for_table45
from repro.baselines.minionn import minionn_predict
from repro.core.protocol import secure_predict
from repro.net.netsim import LAN, WAN_QUOTIENT
from repro.perf.costmodel import minionn_comm_model_mb

MB = 1024 * 1024
MINIONN_KEY_BITS = 512
SCHEMES = ["4(2,2)", "3(2,1)", "ternary", "binary"]

#: Paper Table 4, l=32 block: (LAN s, WAN s, comm MB) at batch (1, 128).
PAPER_L32 = {
    "MiniONN": ((1.14, 3.48, 18.1), (40.05, 125.68, 1621.3)),
    "4(2,2)": ((1.42, 3.54, 11.78), (8.88, 48.18, 707.11)),
    "3(2,1)": ((1.35, 3.44, 10.88), (8.43, 41.94, 591.85)),
    "ternary": ((1.05, 3.03, 6.38), (5.97, 30.66, 415.37)),
    "binary": ((1.008, 2.81, 5.93), (5.93, 27.61, 357.75)),
}


def _report_info(report, label, batch):
    compute = report.offline_client.seconds + report.online_client.seconds
    return {
        "system": label,
        "batch": batch,
        "compute_s": round(compute, 3),
        "comm_MB": round(report.total_bytes / MB, 2),
        "LAN_s": round(LAN.estimate_s(compute, report.total_bytes, report.rounds), 3),
        "WAN_s": round(WAN_QUOTIENT.estimate_s(compute, report.total_bytes, report.rounds), 3),
    }


@pytest.mark.parametrize("batch", batches_for_table45())
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_table4_abnn2(benchmark, scheme_name, batch, quantized_fig4, fig4_dataset, bench_group):
    qmodel = quantized_fig4[scheme_name]
    x = fig4_dataset.test_x[:batch]

    report = benchmark.pedantic(
        lambda: secure_predict(qmodel, x, group=bench_group, timeout_s=2400),
        rounds=1,
        iterations=1,
    )
    info = _report_info(report, f"ABNN2-{scheme_name}", batch)
    info["paper_l32"] = PAPER_L32[scheme_name][0 if batch == 1 else 1]
    benchmark.extra_info.update(info)
    assert (report.predictions == qmodel.predict(x)).all()


@pytest.mark.parametrize("batch", [1])
def test_table4_minionn(benchmark, batch, quantized_fig4, fig4_dataset, bench_group):
    """MiniONN end-to-end (batch 1 only by default: HE compute is heavy)."""
    qmodel = quantized_fig4["4(2,2)"]
    x = fig4_dataset.test_x[:batch]

    report = benchmark.pedantic(
        lambda: minionn_predict(
            qmodel, x, key_bits=MINIONN_KEY_BITS, group=bench_group, timeout_s=2400
        ),
        rounds=1,
        iterations=1,
    )
    info = _report_info(report, "MiniONN(Paillier)", batch)
    # Scale measured ciphertext traffic to realistic 2048-bit keys and
    # also quote the paper-anchored MiniONN traffic model.
    info["comm_MB_at_2048bit"] = round(report.total_bytes / MB * 2048 / MINIONN_KEY_BITS, 2)
    info["paper_model_MB"] = round(minionn_comm_model_mb(batch), 2)
    info["paper_l32"] = PAPER_L32["MiniONN"][0 if batch == 1 else 1]
    benchmark.extra_info.update(info)
    assert (report.predictions == qmodel.predict(x)).all()


def test_table4_shapes(quantized_fig4, fig4_dataset, bench_group):
    """Who wins, and in the right direction, on live runs (batch 2)."""
    batch = 2
    x = fig4_dataset.test_x[:batch]
    minionn = minionn_predict(
        quantized_fig4["4(2,2)"], x, key_bits=MINIONN_KEY_BITS, group=bench_group,
        timeout_s=2400,
    )
    abnn2 = {
        name: secure_predict(quantized_fig4[name], x, group=bench_group, timeout_s=2400)
        for name in ("4(2,2)", "binary")
    }

    def compute(rep):
        return rep.offline_client.seconds + rep.online_client.seconds

    # MiniONN's HE offline dominates: ABNN2 must be faster on compute.
    assert compute(abnn2["4(2,2)"]) < compute(minionn)
    assert compute(abnn2["binary"]) < compute(minionn)
    # Lower bitwidth => less ABNN2 traffic (Table 4's row ordering).
    assert abnn2["binary"].total_bytes < abnn2["4(2,2)"].total_bytes
